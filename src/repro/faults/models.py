"""Seeded fault models: the stochastic processes behind a scenario.

Each model owns one named substream of the experiment's
:class:`~repro.sim.random.RandomSource` and advances exactly once per
control cycle, so a fault schedule is a pure function of ``(root seed,
scenario)`` — reruns reproduce the same outages at the same cycles, and
two policies compared under the same seed face the *identical* fault
schedule (the robustness analogue of the workload harness's "identical
12-hour streams").

The models are deliberately simple, standard processes:

* **Bernoulli sample loss** for telemetry dropout (i.i.d. per agent per
  cycle — the collector's staleness cache turns correlated consequences
  out of uncorrelated losses);
* a **two-state Markov (Gilbert) process** for meter outages and node
  crashes, giving geometrically-distributed burst lengths, the textbook
  model for repairable-component availability;
* **per-command classification** (land / delay / lose) for actuation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultInjectionError

__all__ = [
    "TelemetryFaultModel",
    "MeterFaultModel",
    "ActuationFaultModel",
    "NodeCrashModel",
    "ControllerCrashModel",
]


class TelemetryFaultModel:
    """I.i.d. per-agent sample loss.

    Args:
        rng: The model's dedicated random substream.
        dropout: Per-agent, per-cycle loss probability.
    """

    def __init__(self, rng: np.random.Generator, dropout: float) -> None:
        if not 0.0 <= dropout <= 1.0:
            raise FaultInjectionError("dropout must lie in [0, 1]")
        self._rng = rng
        self._dropout = float(dropout)
        self._dropped = 0

    @property
    def dropped_samples(self) -> int:
        """Total samples lost so far."""
        return self._dropped

    def dropped_mask(self, n: int) -> np.ndarray:
        """Which of ``n`` agents lose their sample this cycle."""
        if self._dropout <= 0.0 or n == 0:
            return np.zeros(n, dtype=bool)
        mask = self._rng.random(n) < self._dropout
        self._dropped += int(mask.sum())
        return mask


class MeterFaultModel:
    """Meter availability as a two-state Markov chain, plus noise.

    Args:
        rng: The model's dedicated random substream.
        outage_rate: Per-cycle up→down transition probability.
        recovery_rate: Per-cycle down→up transition probability.
        noise_fraction: Std of additive gaussian noise as a fraction of
            the reading.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        outage_rate: float,
        recovery_rate: float,
        noise_fraction: float,
    ) -> None:
        if not 0.0 <= outage_rate <= 1.0 or not 0.0 <= recovery_rate <= 1.0:
            raise FaultInjectionError("meter rates must lie in [0, 1]")
        if noise_fraction < 0.0:
            raise FaultInjectionError("noise_fraction must be non-negative")
        self._rng = rng
        self._outage = float(outage_rate)
        self._recovery = float(recovery_rate)
        self._noise = float(noise_fraction)
        self._up = True
        self._outage_cycles = 0
        self._outages = 0

    @property
    def available(self) -> bool:
        """Whether the meter is up right now."""
        return self._up

    @property
    def outage_cycles(self) -> int:
        """Total cycles spent down so far."""
        return self._outage_cycles

    @property
    def outages(self) -> int:
        """Number of distinct outage bursts started."""
        return self._outages

    def step(self) -> bool:
        """Advance one cycle; returns availability for this cycle."""
        if self._outage > 0.0:
            if self._up:
                if self._rng.random() < self._outage:
                    self._up = False
                    self._outages += 1
            elif self._rng.random() < self._recovery:
                self._up = True
        if not self._up:
            self._outage_cycles += 1
        return self._up

    def perturb(self, reading_w: float) -> float:
        """Apply additive sensor noise to an available reading.

        Clamped at zero — a wattmeter cannot report negative power.
        """
        if self._noise <= 0.0:
            return reading_w
        return max(0.0, reading_w + self._rng.normal(0.0, self._noise * reading_w))


class ActuationFaultModel:
    """Per-command loss and delay classification.

    Args:
        rng: The model's dedicated random substream.
        loss: Per-command probability of never landing.
        delay: Per-command probability of landing late.
        delay_cycles: Lateness of delayed commands, cycles.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        loss: float,
        delay: float,
        delay_cycles: int,
    ) -> None:
        if not 0.0 <= loss <= 1.0 or not 0.0 <= delay <= 1.0:
            raise FaultInjectionError("command rates must lie in [0, 1]")
        if delay_cycles < 1:
            raise FaultInjectionError("delay_cycles must be >= 1")
        self._rng = rng
        self._loss = float(loss)
        self._delay = float(delay)
        self.delay_cycles = int(delay_cycles)

    def classify(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Classify ``n`` outgoing commands.

        Returns:
            ``(lost, delayed)`` boolean masks; commands in neither mask
            land immediately.  Loss takes precedence over delay.
        """
        if n == 0 or (self._loss <= 0.0 and self._delay <= 0.0):
            z = np.zeros(n, dtype=bool)
            return z, z.copy()
        draw = self._rng.random(n)
        lost = draw < self._loss
        delayed = ~lost & (draw < self._loss + self._delay)
        return lost, delayed


class NodeCrashModel:
    """Per-node monitoring-plane availability (two-state Markov).

    A down node's agent reports nothing and its DVFS endpoint drops
    commands; the node itself keeps computing (§I.A: the monitoring
    plane fails more often than the nodes do).

    Args:
        rng: The model's dedicated random substream.
        num_nodes: Cluster size.
        crash_rate: Per-node, per-cycle up→down probability.
        recovery_rate: Per-node, per-cycle down→up probability.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        num_nodes: int,
        crash_rate: float,
        recovery_rate: float,
    ) -> None:
        if not 0.0 <= crash_rate <= 1.0 or not 0.0 <= recovery_rate <= 1.0:
            raise FaultInjectionError("crash rates must lie in [0, 1]")
        if num_nodes < 1:
            raise FaultInjectionError("num_nodes must be >= 1")
        self._rng = rng
        self._crash = float(crash_rate)
        self._recovery = float(recovery_rate)
        self._online = np.ones(num_nodes, dtype=bool)
        self._crashes = 0
        self._offline_node_cycles = 0

    @property
    def online(self) -> np.ndarray:
        """Per-node availability mask (read-only semantics)."""
        return self._online

    @property
    def crashes(self) -> int:
        """Total crash events so far."""
        return self._crashes

    @property
    def offline_node_cycles(self) -> int:
        """Σ over cycles of the number of offline nodes."""
        return self._offline_node_cycles

    def step(self) -> np.ndarray:
        """Advance one cycle; returns this cycle's availability mask."""
        if self._crash > 0.0:
            draw = self._rng.random(len(self._online))
            crashing = self._online & (draw < self._crash)
            recovering = ~self._online & (draw < self._recovery)
            self._crashes += int(crashing.sum())
            self._online[crashing] = False
            self._online[recovering] = True
        self._offline_node_cycles += int((~self._online).sum())
        return self._online


class ControllerCrashModel:
    """Crash events of the central power manager itself.

    Unlike the node models this is an *event* process, not an
    availability chain: each cycle the model draws whether the active
    controller fails right now.  Repair timing is not random — a crashed
    controller comes back after a fixed ``controller_restart_cycles``
    (journal recovery plus process restart), which the
    :class:`~repro.ha.failover.HaController` enforces; the model only
    decides *when* crashes strike, so primary/standby and
    restart-in-place variants face the identical crash schedule under
    the same seed.

    Args:
        rng: The model's dedicated random substream.
        crash_rate: Per-cycle crash probability of the active manager.
    """

    def __init__(self, rng: np.random.Generator, crash_rate: float) -> None:
        if not 0.0 <= crash_rate <= 1.0:
            raise FaultInjectionError("controller crash rate must lie in [0, 1]")
        self._rng = rng
        self._crash = float(crash_rate)
        self._crashes = 0

    @property
    def crashes(self) -> int:
        """Total controller crash events drawn so far."""
        return self._crashes

    def step(self) -> bool:
        """Advance one cycle; returns True when a crash strikes now."""
        if self._crash <= 0.0:
            return False
        hit = bool(self._rng.random() < self._crash)
        if hit:
            self._crashes += 1
        return hit
