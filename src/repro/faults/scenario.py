"""Fault-scenario configuration.

A :class:`FaultScenario` is a frozen, validated description of *which*
failure processes run during an experiment and at *what* rates — the
monitoring-plane failure law the architecture's §III.A silently assumes
away.  It carries no runtime state and draws no randomness itself: the
:class:`~repro.faults.injector.FaultInjector` builds seeded fault models
from it using the experiment's :class:`~repro.sim.random.RandomSource`
stream registry, so every fault schedule is reproducible from the root
seed and adding fault streams never perturbs the workload streams.

All rates are per control cycle (the manager's τ), matching how the
paper counts everything else.  ``FaultScenario.none()`` is the exact
paper setting — every rate zero — and is guaranteed not to change a
single decision of a run: no fault model is even constructed for it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PRESET_HINT, FaultInjectionError

__all__ = ["FaultScenario"]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{name} must lie in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultScenario:
    """Rates of every modelled monitoring-plane failure process.

    Attributes:
        telemetry_dropout: Per-agent, per-cycle probability that a
            node's telemetry sample is lost (the collector falls back to
            its last-known-good cache for that node).
        meter_outage_rate: Per-cycle probability that the system power
            meter goes from up to down (start of an outage burst).
        meter_recovery_rate: Per-cycle probability that a down meter
            comes back up — outage bursts are geometric with mean
            ``1 / meter_recovery_rate`` cycles.
        meter_noise_fraction: Standard deviation of *additive* gaussian
            meter noise, as a fraction of the true reading (on top of
            whatever multiplicative noise the meter itself models).
        command_loss: Per-command probability that a DVFS command never
            lands (the actuator's readback verification catches it and
            re-issues with backoff).
        command_delay: Per-command probability that a DVFS command lands
            late instead of immediately.
        command_delay_cycles: How many cycles late a delayed command
            lands.
        node_crash_rate: Per-node, per-cycle probability that a node's
            monitoring plane crashes (agent and DVFS endpoint both dark:
            telemetry lost and commands dropped while down; the node
            keeps computing — the §I.A observation that the monitoring
            plane fails more often than the computation does).
        node_recovery_rate: Per-node, per-cycle probability that a
            crashed node recovers.
        controller_crash_rate: Per-cycle probability that the *active
            global power manager itself* crashes.  A controller crash
            only has an effect when the run uses the high-availability
            harness (:mod:`repro.ha`): the crashed manager loses all
            in-memory state and a successor (warm standby, or the same
            process after ``controller_restart_cycles``) recovers from
            the state journal under a new fencing epoch.
        controller_restart_cycles: How many cycles a crashed controller
            needs before it can serve again (restart-after-k: journal
            recovery, process restart and re-attach latency).
    """

    telemetry_dropout: float = 0.0
    meter_outage_rate: float = 0.0
    meter_recovery_rate: float = 0.25
    meter_noise_fraction: float = 0.0
    command_loss: float = 0.0
    command_delay: float = 0.0
    command_delay_cycles: int = 2
    node_crash_rate: float = 0.0
    node_recovery_rate: float = 0.1
    controller_crash_rate: float = 0.0
    controller_restart_cycles: int = 20

    def __post_init__(self) -> None:
        _check_probability("telemetry_dropout", self.telemetry_dropout)
        _check_probability("meter_outage_rate", self.meter_outage_rate)
        _check_probability("meter_recovery_rate", self.meter_recovery_rate)
        _check_probability("command_loss", self.command_loss)
        _check_probability("command_delay", self.command_delay)
        _check_probability("node_crash_rate", self.node_crash_rate)
        _check_probability("node_recovery_rate", self.node_recovery_rate)
        _check_probability("controller_crash_rate", self.controller_crash_rate)
        if self.controller_restart_cycles < 1:
            raise FaultInjectionError("controller_restart_cycles must be >= 1")
        if self.meter_noise_fraction < 0.0:
            raise FaultInjectionError("meter_noise_fraction must be non-negative")
        if self.command_delay_cycles < 1:
            raise FaultInjectionError("command_delay_cycles must be >= 1")
        if self.meter_outage_rate > 0.0 and self.meter_recovery_rate == 0.0:
            raise FaultInjectionError(
                "meter outages enabled but meter_recovery_rate is 0 "
                "(the meter would never come back)"
            )
        if self.node_crash_rate > 0.0 and self.node_recovery_rate == 0.0:
            raise FaultInjectionError(
                "node crashes enabled but node_recovery_rate is 0 "
                "(crashed nodes would never come back)"
            )

    @property
    def enabled(self) -> bool:
        """Whether any failure process has a non-zero rate."""
        return (
            self.telemetry_dropout > 0.0
            or self.meter_outage_rate > 0.0
            or self.meter_noise_fraction > 0.0
            or self.command_loss > 0.0
            or self.command_delay > 0.0
            or self.node_crash_rate > 0.0
            or self.controller_crash_rate > 0.0
        )

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def none(cls, **overrides) -> "FaultScenario":
        """The paper's fault-free setting (all rates zero)."""
        return replace(cls(), **overrides)

    @classmethod
    def light(cls, **overrides) -> "FaultScenario":
        """The acceptance scenario: 10% telemetry dropout + 1% command
        loss — a realistically flaky monitoring plane with a healthy
        meter."""
        base = cls(telemetry_dropout=0.10, command_loss=0.01)
        return replace(base, **overrides)

    @classmethod
    def heavy(cls, **overrides) -> "FaultScenario":
        """Everything failing at once: heavy sample loss, meter outage
        bursts with additive noise, lossy and laggy actuation, and
        monitoring-plane crashes."""
        base = cls(
            telemetry_dropout=0.30,
            meter_outage_rate=0.02,
            meter_recovery_rate=0.20,
            meter_noise_fraction=0.01,
            command_loss=0.05,
            command_delay=0.10,
            command_delay_cycles=3,
            node_crash_rate=0.001,
            node_recovery_rate=0.05,
        )
        return replace(base, **overrides)

    @classmethod
    def controller_crash(cls, **overrides) -> "FaultScenario":
        """The light monitoring-plane scenario plus crashes of the
        central power manager itself (run with the :mod:`repro.ha`
        harness; laggy actuation keeps commands in flight across the
        crash so the fencing epoch has something to reject)."""
        base = cls(
            telemetry_dropout=0.10,
            command_loss=0.01,
            command_delay=0.05,
            command_delay_cycles=3,
            controller_crash_rate=0.005,
            controller_restart_cycles=20,
        )
        return replace(base, **overrides)

    @classmethod
    def preset_names(cls) -> tuple[str, ...]:
        """Names accepted by :meth:`preset`, sorted."""
        return tuple(sorted(_PRESETS))

    @classmethod
    def preset(cls, name: str, **overrides) -> "FaultScenario":
        """Look up a named preset, with a friendly error on a typo.

        Raises:
            FaultInjectionError: for an unknown preset name, listing the
                available presets instead of surfacing a bare KeyError.
        """
        try:
            factory = _PRESETS[name]
        except KeyError:
            raise FaultInjectionError(
                f"unknown fault scenario preset {name!r}; available "
                f"presets: {', '.join(cls.preset_names())} "
                f"({PRESET_HINT})"
            ) from None
        return factory(**overrides)


#: Registry behind :meth:`FaultScenario.preset` (and the CLI ``--faults``
#: choices) — add new presets here so every consumer sees them.
_PRESETS: dict[str, "classmethod"] = {
    "none": FaultScenario.none,
    "light": FaultScenario.light,
    "heavy": FaultScenario.heavy,
    "controller-crash": FaultScenario.controller_crash,
}
