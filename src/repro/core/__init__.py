"""The paper's contribution: the power provision and capping architecture.

Composition (one control cycle of :class:`~repro.core.manager.PowerManager`):

1. the **meter** reads total system power ``P`` (Observability);
2. the **collector** sweeps the candidate set's profiling agents;
3. the **threshold controller** classifies ``P`` against ``P_L``/``P_H``
   (green / yellow / red) and periodically re-learns the thresholds from
   the observed peak (§III.A);
4. the **capping algorithm** (Algorithm 1) decides: steady-green upgrade,
   yellow one-level degradation of a policy-selected target set, or red
   emergency drop of every candidate to its lowest state;
5. the **target-selection policy** (§IV) picks which job's nodes to
   degrade in yellow — state-based (MPC, MPC-C, LPC, LPC-C, BFP) or
   change-based (HRI, HRI-C);
6. the **actuator** issues the DVFS commands.

Modules:

* :mod:`repro.core.sets` — the A_total / A_uncontrollable / A_candidate /
  A_target classification (§II.A);
* :mod:`repro.core.states` — green/yellow/red classification (§II.B);
* :mod:`repro.core.thresholds` — threshold learning and adjustment
  (§III.A);
* :mod:`repro.core.capping` — Algorithm 1;
* :mod:`repro.core.policies` — the target-selection policy zoo;
* :mod:`repro.core.actuator` — DVFS command issue;
* :mod:`repro.core.manager` — the assembled control loop.
"""

from repro.core.actuator import ActuationReport, DvfsActuator
from repro.core.capping import CappingAction, CappingDecision, PowerCappingAlgorithm
from repro.core.manager import CycleReport, PowerManager
from repro.core.policies import (
    PolicyContext,
    SelectionPolicy,
    available_policies,
    make_policy,
)
from repro.core.sets import CandidateSelector, NodeSets
from repro.core.states import PowerState, classify_power_state
from repro.core.thresholds import PowerThresholds, ThresholdController

__all__ = [
    "ActuationReport",
    "CandidateSelector",
    "CappingAction",
    "CappingDecision",
    "CycleReport",
    "DvfsActuator",
    "NodeSets",
    "PolicyContext",
    "PowerCappingAlgorithm",
    "PowerManager",
    "PowerState",
    "PowerThresholds",
    "SelectionPolicy",
    "ThresholdController",
    "available_policies",
    "classify_power_state",
    "make_policy",
]
