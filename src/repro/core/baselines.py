"""Related-work baseline controllers (§I.B) for comparison benches.

The paper positions its architecture against two families of prior work
without measuring them; we implement a representative of each so the
benchmark suite can compare all three on identical streams:

* :class:`MimoFeedbackManager` — a proportional feedback controller in
  the spirit of Wang & Chen's cluster-level MIMO control (HPCA'08): each
  cycle it computes the power error against a setpoint (``P_L``) and
  moves *individual nodes* (ranked by savings, ignoring job structure)
  by one DVFS level until the estimated power change matches
  ``gain × error``.  No green/yellow/red bands, no job granularity —
  pure magnitude control.

* :class:`BudgetPartitionManager` — a two-level budget allocator in the
  spirit of Femal & Freeh (ICAC'05): the cluster budget (``P_L``) is
  partitioned across candidate nodes each cycle (uniformly or
  proportional to demand), and every node is clamped to the highest
  DVFS level whose Formula (1) estimate fits its share.  Proactive and
  per-node, trading throughput for hard per-node guarantees.

Both subclasses reuse the full :class:`~repro.core.manager.PowerManager`
sensing/actuation/reporting pipeline and override only the per-cycle
decision step, so every experiment-harness feature (metrics, state
accounting, determinism) applies unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.capping import CappingAction, CappingDecision
from repro.core.manager import PowerManager
from repro.core.policies.base import PolicyContext, SelectionPolicy
from repro.core.sets import NodeSets
from repro.core.states import PowerState
from repro.core.thresholds import ThresholdController
from repro.errors import ConfigurationError
from repro.faults.degraded import DegradedModeConfig
from repro.faults.injector import FaultInjector
from repro.obs.facade import Observability
from repro.power.meter import SystemPowerMeter
from repro.telemetry.cost import ManagementCostModel
from repro.telemetry.recorder import TimeSeriesRecorder

__all__ = ["MimoFeedbackManager", "BudgetPartitionManager"]

_EMPTY_I = np.empty(0, dtype=np.int64)


def _none_decision(state: PowerState) -> CappingDecision:
    return CappingDecision(state, CappingAction.NONE, _EMPTY_I, _EMPTY_I, 0)


class MimoFeedbackManager(PowerManager):
    """Proportional (Wang-style) feedback power controller.

    Args:
        gain: Fraction of the power error corrected per cycle, in
            (0, 1]; 1.0 is deadbeat (aggressive), small values damp.
        release_margin_fraction: Headroom below the setpoint (as a
            fraction of it) required before levels are restored —
            hysteresis against chattering.
        (remaining args as :class:`~repro.core.manager.PowerManager`;
        the ``policy`` argument is accepted for interface compatibility
        but never consulted.)
    """

    def __init__(
        self,
        cluster: Cluster,
        sets: NodeSets,
        meter: SystemPowerMeter,
        thresholds: ThresholdController,
        policy: SelectionPolicy,
        steady_green_cycles: int = 10,
        cost_model: ManagementCostModel | None = None,
        recorder: TimeSeriesRecorder | None = None,
        gain: float = 0.6,
        release_margin_fraction: float = 0.03,
        fault_injector: FaultInjector | None = None,
        degraded: DegradedModeConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(
            cluster,
            sets,
            meter,
            thresholds,
            policy,
            steady_green_cycles=steady_green_cycles,
            cost_model=cost_model,
            recorder=recorder,
            fault_injector=fault_injector,
            degraded=degraded,
            obs=obs,
        )
        if not 0.0 < gain <= 1.0:
            raise ConfigurationError("gain must lie in (0, 1]")
        if release_margin_fraction < 0:
            raise ConfigurationError("release margin must be non-negative")
        self._gain = float(gain)
        self._release_margin = float(release_margin_fraction)

    def _decide(self, state: PowerState, ctx: PolicyContext) -> CappingDecision:
        setpoint = ctx.thresholds.p_low
        error_w = ctx.system_power - setpoint
        if error_w > 0.0:
            return self._throttle(state, ctx, self._gain * error_w)
        if error_w < -self._release_margin * setpoint:
            headroom = -error_w - self._release_margin * setpoint
            return self._release(state, ctx, self._gain * headroom)
        return _none_decision(state)

    def _throttle(
        self, state: PowerState, ctx: PolicyContext, shed_w: float
    ) -> CappingDecision:
        snapshot = ctx.snapshot
        eligible = np.flatnonzero((snapshot.job_id >= 0) & (snapshot.level > 0))
        if len(eligible) == 0:
            return _none_decision(state)
        savings = ctx.node_savings[eligible]
        order = eligible[np.argsort(savings, kind="stable")[::-1]]
        cumulative = np.cumsum(savings[np.argsort(savings, kind="stable")[::-1]])
        take = int(np.searchsorted(cumulative, shed_w) + 1)
        chosen = order[: min(take, len(order))]
        node_ids = np.sort(snapshot.node_ids[chosen])
        idx = np.searchsorted(snapshot.node_ids, node_ids)
        new_levels = np.maximum(snapshot.level[idx] - 1, 0)
        return CappingDecision(state, CappingAction.DEGRADE, node_ids, new_levels, 0)

    def _release(
        self, state: PowerState, ctx: PolicyContext, add_w: float
    ) -> CappingDecision:
        snapshot = ctx.snapshot
        top = self._cluster.spec.top_level
        below = np.flatnonzero(snapshot.level < top)
        if len(below) == 0:
            return _none_decision(state)
        est = ctx.estimator
        current = est.estimate_nodes(
            snapshot.level[below],
            snapshot.cpu_util[below],
            snapshot.mem_frac[below],
            snapshot.nic_frac[below],
            node_ids=snapshot.node_ids[below],
        )
        upgraded = est.estimate_nodes(
            np.minimum(snapshot.level[below] + 1, top),
            snapshot.cpu_util[below],
            snapshot.mem_frac[below],
            snapshot.nic_frac[below],
            node_ids=snapshot.node_ids[below],
        )
        cost = upgraded - current
        # Restore the deepest-throttled nodes first (fairness + the
        # bottleneck model: the slowest node gates its job).
        order = below[np.argsort(snapshot.level[below], kind="stable")]
        cost_ordered = cost[np.argsort(snapshot.level[below], kind="stable")]
        cumulative = np.cumsum(cost_ordered)
        take = int(np.searchsorted(cumulative, add_w) + 1)
        chosen = order[: min(take, len(order))]
        if len(chosen) == 0:
            return _none_decision(state)
        node_ids = np.sort(snapshot.node_ids[chosen])
        idx = np.searchsorted(snapshot.node_ids, node_ids)
        new_levels = np.minimum(snapshot.level[idx] + 1, top)
        return CappingDecision(state, CappingAction.UPGRADE, node_ids, new_levels, 0)


class BudgetPartitionManager(PowerManager):
    """Two-level (Femal-style) budget partitioning controller.

    Every cycle the cluster budget — the learned ``P_L`` — is divided
    among the candidate nodes and each node is clamped to the highest
    level whose estimated power fits its share.

    Args:
        proportional: Partition the budget proportionally to each node's
            *demand* (its estimated power at the top level under current
            load) instead of uniformly.
        (remaining args as :class:`~repro.core.manager.PowerManager`;
        ``policy`` is accepted but unused.)
    """

    def __init__(
        self,
        cluster: Cluster,
        sets: NodeSets,
        meter: SystemPowerMeter,
        thresholds: ThresholdController,
        policy: SelectionPolicy,
        steady_green_cycles: int = 10,
        cost_model: ManagementCostModel | None = None,
        recorder: TimeSeriesRecorder | None = None,
        proportional: bool = True,
        fault_injector: FaultInjector | None = None,
        degraded: DegradedModeConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(
            cluster,
            sets,
            meter,
            thresholds,
            policy,
            steady_green_cycles=steady_green_cycles,
            cost_model=cost_model,
            recorder=recorder,
            fault_injector=fault_injector,
            degraded=degraded,
            obs=obs,
        )
        self._proportional = bool(proportional)
        self._num_levels = cluster.spec.num_levels

    def _decide(self, state: PowerState, ctx: PolicyContext) -> CappingDecision:
        snapshot = ctx.snapshot
        n = snapshot.size
        if n == 0:
            return _none_decision(state)
        est = ctx.estimator
        top = self._num_levels - 1

        # Non-candidate nodes consume part of the global budget; charge
        # their estimated share before partitioning the rest.
        cluster_budget = ctx.thresholds.p_low
        monitored_power = float(ctx.node_power.sum())
        unmonitored = max(0.0, ctx.system_power - monitored_power)
        budget = max(0.0, cluster_budget - unmonitored)

        # Per-node demand: estimated draw at the top level, current load.
        demand = est.estimate_nodes(
            np.full(n, top, dtype=np.int64),
            snapshot.cpu_util,
            snapshot.mem_frac,
            snapshot.nic_frac,
            node_ids=snapshot.node_ids,
        )
        if self._proportional and demand.sum() > 0:
            shares = budget * demand / demand.sum()
        else:
            shares = np.full(n, budget / n)

        # Power of every node at every level (L×N) with current load.
        levels = np.arange(self._num_levels, dtype=np.int64)
        matrix = est.model.evaluate_for_nodes(
            snapshot.node_ids,
            levels[:, None],
            snapshot.cpu_util[None, :],
            snapshot.mem_frac[None, :],
            snapshot.nic_frac[None, :],
        )
        fits = matrix <= shares[None, :]
        # Highest fitting level per node; level 0 if nothing fits.
        best = np.where(fits.any(axis=0), self._num_levels - 1 - np.argmax(fits[::-1], axis=0), 0)

        changed = best != snapshot.level
        if not changed.any():
            return _none_decision(state)
        node_ids = snapshot.node_ids[changed]
        new_levels = best[changed].astype(np.int64)
        action = (
            CappingAction.DEGRADE
            if np.any(new_levels < snapshot.level[changed])
            else CappingAction.UPGRADE
        )
        return CappingDecision(state, action, node_ids, new_levels, 0)
