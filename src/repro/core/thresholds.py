"""Threshold setting and adjustment (§III.A).

The thresholds derive from the observed peak power::

    P_H = (1 − 7%)  · P_peak = 93% · P_peak
    P_L = (1 − 16%) · P_peak = 84% · P_peak

The 7%/16% margins come from Fan et al.'s observation of the gap between
achieved and theoretical aggregate power in large-scale systems.

Protocol implemented by :class:`ThresholdController`:

1. ``P_peak`` starts at the power provision capability ``P_Max``
   ("the initial value of P_peak is set to be the value of P_max");
2. during the **training period** the system runs unmanaged and the
   maximal observed power is recorded;
3. at the end of training, ``P_peak`` is replaced by the recorded maximum
   and the thresholds recomputed;
4. afterwards, observation continues and the thresholds are re-adjusted
   every ``t_p`` control cycles from the running peak (which can only
   ratchet upward — a lull never loosens safety margins downward).

Thresholds may also be pinned manually ("set … by the system
administrator based on his empirical knowledge") via
:meth:`ThresholdController.fixed`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, PowerManagementError
from repro.types import Watts

__all__ = ["PowerThresholds", "ThresholdController"]


@dataclass(frozen=True)
class PowerThresholds:
    """An immutable ``(P_L, P_H)`` pair, watts."""

    p_low: float
    p_high: float

    def __post_init__(self) -> None:
        if not 0.0 < self.p_low <= self.p_high:
            raise ConfigurationError(
                f"need 0 < P_L <= P_H, got P_L={self.p_low}, P_H={self.p_high}"
            )


class ThresholdController:
    """Learns and periodically adjusts ``P_L``/``P_H`` from observed peaks.

    Args:
        initial_peak_w: Starting ``P_peak`` (the provision capability).
        margin_high: Fractional gap below the peak for ``P_H`` (paper: 0.07).
        margin_low: Fractional gap below the peak for ``P_L`` (paper: 0.16).
        adjust_every_cycles: ``t_p`` — re-derive thresholds from the
            running peak every this many :meth:`observe` calls.  Must be
            "relatively large" compared to the capping cadence.
        frozen: When True the thresholds never change (admin-pinned).
    """

    def __init__(
        self,
        initial_peak_w: Watts,
        margin_high: float = 0.07,
        margin_low: float = 0.16,
        adjust_every_cycles: int = 600,
        frozen: bool = False,
    ) -> None:
        if initial_peak_w <= 0:
            raise ConfigurationError("initial peak must be positive")
        if not 0.0 <= margin_high < margin_low < 1.0:
            raise ConfigurationError(
                "margins must satisfy 0 <= margin_high < margin_low < 1 "
                f"(got high={margin_high}, low={margin_low})"
            )
        if adjust_every_cycles < 1:
            raise ConfigurationError("adjust_every_cycles must be >= 1")
        self._margin_high = float(margin_high)
        self._margin_low = float(margin_low)
        self._adjust_every = int(adjust_every_cycles)
        self._frozen = bool(frozen)
        self._peak = float(initial_peak_w)
        self._running_peak = float(initial_peak_w)
        self._observations = 0
        self._adjustments = 0
        #: Provisioned-capacity ceiling (None = unconstrained).  Set only
        #: through :meth:`set_envelope` by the provision layer; clamps
        #: what learning may derive, survives :meth:`restore_state`.
        self._envelope: float | None = None
        self._base_thresholds = self._derive(self._peak)
        self._thresholds = self._base_thresholds

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def fixed(cls, p_low: float, p_high: float) -> "ThresholdController":
        """Admin-pinned thresholds that never adjust."""
        if not 0.0 < p_low <= p_high:
            raise ConfigurationError("need 0 < P_L <= P_H")
        controller = cls(initial_peak_w=p_high, frozen=True)
        controller._base_thresholds = PowerThresholds(p_low=p_low, p_high=p_high)
        controller._thresholds = controller._base_thresholds
        return controller

    @classmethod
    def from_training(
        cls,
        training_peak_w: Watts,
        margin_high: float = 0.07,
        margin_low: float = 0.16,
        adjust_every_cycles: int = 600,
    ) -> "ThresholdController":
        """Controller initialised from a completed training period's peak."""
        return cls(
            initial_peak_w=training_peak_w,
            margin_high=margin_high,
            margin_low=margin_low,
            adjust_every_cycles=adjust_every_cycles,
        )

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def thresholds(self) -> PowerThresholds:
        """The current ``(P_L, P_H)``."""
        return self._thresholds

    @property
    def p_low(self) -> float:
        """Current ``P_L``, watts."""
        return self._thresholds.p_low

    @property
    def p_high(self) -> float:
        """Current ``P_H``, watts."""
        return self._thresholds.p_high

    @property
    def peak(self) -> float:
        """The ``P_peak`` the current thresholds derive from, watts."""
        return self._peak

    @property
    def running_peak(self) -> float:
        """Highest power observed so far (≥ ``peak``), watts."""
        return self._running_peak

    @property
    def adjustments(self) -> int:
        """Number of periodic adjustments performed."""
        return self._adjustments

    @property
    def envelope_w(self) -> float | None:
        """Provisioned-capacity envelope, watts (None = unconstrained)."""
        return self._envelope

    def _derive(self, peak: float) -> PowerThresholds:
        return PowerThresholds(
            p_low=(1.0 - self._margin_low) * peak,
            p_high=(1.0 - self._margin_high) * peak,
        )

    def _clamped(self, thresholds: PowerThresholds) -> PowerThresholds:
        """Apply the envelope: thresholds never exceed what the surviving
        capacity would derive (margins applied to the envelope itself)."""
        env = self._envelope
        if env is None:
            return thresholds
        cap_low = (1.0 - self._margin_low) * env
        cap_high = (1.0 - self._margin_high) * env
        if thresholds.p_low <= cap_low and thresholds.p_high <= cap_high:
            return thresholds
        return PowerThresholds(
            p_low=min(thresholds.p_low, cap_low),
            p_high=min(thresholds.p_high, cap_high),
        )

    # ------------------------------------------------------------------
    # Provisioned-capacity envelope (repro.provision)
    # ------------------------------------------------------------------
    def set_envelope(self, capacity_w: Watts | None) -> bool:
        """Renegotiate the budget against surviving provisioned capacity.

        The provision layer calls this when delivery capacity changes
        (feed loss, PDU failure, operator cap order, or recovery).  The
        envelope caps both what the *current* thresholds may be and what
        any later learning (:meth:`observe`, :meth:`complete_training`)
        may re-derive — a peak recorded under full capacity must not
        widen the budget while capacity is down.  It applies to frozen
        (admin-pinned) controllers too: physics outranks policy.

        Args:
            capacity_w: Surviving capacity, watts; ``None`` removes the
                envelope (full capacity restored).

        Returns:
            True if the effective thresholds changed.
        """
        if capacity_w is not None and capacity_w <= 0:
            raise ConfigurationError("capacity envelope must be positive")
        new = None if capacity_w is None else float(capacity_w)
        if new == self._envelope:
            return False
        self._envelope = new
        clamped = self._clamped(self._base_thresholds)
        if clamped == self._thresholds:
            return False
        self._thresholds = clamped
        return True

    # ------------------------------------------------------------------
    # Observation / adjustment
    # ------------------------------------------------------------------
    def observe(self, power_w: Watts) -> bool:
        """Feed one power reading; returns True if thresholds changed.

        The running peak ratchets up immediately; thresholds are only
        re-derived every ``t_p`` observations (and never while frozen).
        """
        if power_w < 0:
            raise PowerManagementError("negative power reading")
        if power_w > self._running_peak:
            self._running_peak = float(power_w)
        self._observations += 1
        if self._frozen:
            return False
        if self._observations % self._adjust_every != 0:
            return False
        return self._apply_peak(self._running_peak)

    def complete_training(self, training_peak_w: Watts) -> bool:
        """End the training period: adopt its recorded maximum as P_peak.

        Returns True if the thresholds changed.
        """
        if training_peak_w <= 0:
            raise PowerManagementError("training peak must be positive")
        if self._frozen:
            return False
        if training_peak_w > self._running_peak:
            self._running_peak = float(training_peak_w)
        return self._apply_peak(self._running_peak)

    def _apply_peak(self, peak: float) -> bool:
        if peak == self._peak:
            return False
        self._peak = float(peak)
        self._base_thresholds = self._derive(self._peak)
        self._adjustments += 1
        new = self._clamped(self._base_thresholds)
        if new == self._thresholds:
            return False
        self._thresholds = new
        return True

    # ------------------------------------------------------------------
    # Crash recovery (repro.ha state journal)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Everything threshold learning needs to resume after a crash.

        The returned dict is one section of the HA state journal's
        records (see ``docs/robustness.md``); feeding it back through
        :meth:`restore_state` on a freshly built controller reproduces
        this controller's future decisions bit for bit.
        """
        return {
            "peak_w": self._peak,
            "running_peak_w": self._running_peak,
            "observations": self._observations,
            "adjustments": self._adjustments,
            "p_low_w": self._thresholds.p_low,
            "p_high_w": self._thresholds.p_high,
            "base_p_low_w": self._base_thresholds.p_low,
            "base_p_high_w": self._base_thresholds.p_high,
            "envelope_w": self._envelope,
            "margin_high": self._margin_high,
            "margin_low": self._margin_low,
            "adjust_every_cycles": self._adjust_every,
            "frozen": self._frozen,
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Adopt a :meth:`state_dict`, overwriting all learned state.

        ``p_low``/``p_high`` are restored verbatim rather than re-derived
        so admin-pinned (:meth:`fixed`) controllers round-trip too.

        The capacity envelope is the one place the journal does *not* win
        outright: the effective envelope is the **stricter** of the
        journaled one and whatever this (live) controller already holds.
        A checkpoint written under full capacity must not let a failover
        widen thresholds past capacity that has since been lost — the
        journal records policy, but the envelope records physics.
        """
        self._margin_high = float(state["margin_high"])
        self._margin_low = float(state["margin_low"])
        self._adjust_every = int(state["adjust_every_cycles"])
        self._frozen = bool(state["frozen"])
        self._peak = float(state["peak_w"])
        self._running_peak = float(state["running_peak_w"])
        self._observations = int(state["observations"])
        self._adjustments = int(state["adjustments"])
        raw_env = state.get("envelope_w")
        journaled_env = None if raw_env is None else float(raw_env)  # type: ignore[arg-type]
        live_env = self._envelope
        if journaled_env is None:
            self._envelope = live_env
        elif live_env is None:
            self._envelope = journaled_env
        else:
            self._envelope = min(live_env, journaled_env)
        restored = PowerThresholds(
            p_low=float(state["p_low_w"]), p_high=float(state["p_high_w"])  # type: ignore[arg-type]
        )
        self._base_thresholds = PowerThresholds(
            p_low=float(state.get("base_p_low_w", restored.p_low)),  # type: ignore[arg-type]
            p_high=float(state.get("base_p_high_w", restored.p_high)),  # type: ignore[arg-type]
        )
        self._thresholds = self._clamped(restored)
