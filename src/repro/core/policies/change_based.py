"""Change-based policies: HRI and HRI-C (§IV.B).

Instead of ranking jobs by their current power, change-based policies
rank by the *rate of increase*::

    ΔP^t(J) = (P^t(J) − P^{t−1}(J)) / P^{t−1}(J)

targeting the job most likely to have *caused* the excursion into yellow
— "fairer because it punishes the job that cause[d the] problem".  The
paper notes the flip side: the targeted job's node set may be small, so
each control cycle sheds less power than MPC and the pull-back to green
can be slower (this is exactly the mechanism behind MPC beating HRI on
the ΔP×T metric in Figure 7).

Jobs only acquire a rate once they appear in two consecutive snapshots
with positive previous power; on the very first cycle (no previous
snapshot) the selection is empty and the capping algorithm simply tries
again next cycle.

HRI-C is the collection counterpart (the paper defines it as the analogue
of MPC-C): accumulate jobs in decreasing-rate order until the estimated
savings cover the deficit.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies.base import (
    PolicyContext,
    SelectionPolicy,
    register_policy,
)

__all__ = ["HighestRateOfIncreasePolicy", "HighestRateCollectionPolicy"]


def _jobs_by_rate(ctx: PolicyContext) -> list[int]:
    """Job ids in decreasing ΔP^t(J) order; ties toward lower job id."""
    rates = ctx.job_increase_rates()
    return sorted(rates, key=lambda jid: (-rates[jid], jid))


@register_policy("hri")
class HighestRateOfIncreasePolicy(SelectionPolicy):
    """HRI: target the job with the highest rate of power increase."""

    def select(self, ctx: PolicyContext) -> np.ndarray:
        for jid in _jobs_by_rate(ctx):
            nodes = ctx.degradable_nodes_of_job(jid)
            if len(nodes):
                return nodes
        return self.empty_selection()


@register_policy("hri-c")
class HighestRateCollectionPolicy(SelectionPolicy):
    """HRI-C: accumulate highest-rate jobs until savings cover the deficit."""

    def select(self, ctx: PolicyContext) -> np.ndarray:
        deficit = ctx.deficit_w
        saved = 0.0
        collected: list[np.ndarray] = []
        for jid in _jobs_by_rate(ctx):
            nodes = ctx.degradable_nodes_of_job(jid)
            if len(nodes) == 0:
                continue
            collected.append(nodes)
            saved += ctx.savings_of_job(jid)
            if saved >= deficit:
                break
        if not collected:
            return self.empty_selection()
        return np.sort(np.concatenate(collected))
