"""Job-collection policies: MPC-C (Algorithm 2) and LPC-C.

Targeting a single job may not shed enough power in one cycle; Algorithm 2
accumulates jobs — most power-consuming first — until the estimated total
savings ``Σ [P(x) − P'(x)]`` covers the deficit ``P − P_L`` (or jobs run
out).  ``P'(x)`` is the Formula (1) estimate of node ``x`` one level down,
exactly as the paper specifies.

LPC-C is the symmetric counterpart accumulating from the least
power-consuming end; it converges more slowly but perturbs the big
(presumably important) jobs last.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies.base import (
    PolicyContext,
    SelectionPolicy,
    register_policy,
)

__all__ = ["MostPowerCollectionPolicy", "LeastPowerCollectionPolicy"]


class _CollectionPolicy(SelectionPolicy):
    """Algorithm 2 skeleton, parameterised by job rank order."""

    _descending: bool = True

    def select(self, ctx: PolicyContext) -> np.ndarray:
        deficit = ctx.deficit_w
        saved = 0.0
        collected: list[np.ndarray] = []
        # Algorithm 2: for i in 1..k over ranked jobs, accumulate the
        # savings of nodes not already collected, stop once
        # Saved >= P - P_L.
        for job_id in ctx.job_table.sorted_by_power(descending=self._descending):
            nodes = ctx.degradable_nodes_of_job(int(job_id))
            if len(nodes) == 0:
                continue
            collected.append(nodes)
            saved += ctx.savings_of_job(int(job_id))
            if saved >= deficit:
                break
        if not collected:
            return self.empty_selection()
        # Jobs own disjoint node sets, so concatenation is already
        # duplicate-free (the union in Algorithm 2 degenerates to this).
        return np.sort(np.concatenate(collected))


@register_policy("mpc-c")
class MostPowerCollectionPolicy(_CollectionPolicy):
    """MPC-C: Algorithm 2 — accumulate most power-consuming jobs first."""

    _descending = True


@register_policy("lpc-c")
class LeastPowerCollectionPolicy(_CollectionPolicy):
    """LPC-C: accumulate least power-consuming jobs first."""

    _descending = False
