"""Extension policies (§VI future work: "other selection policies").

The paper closes by promising experiments with additional policies; these
three are natural members of the design space and serve the ablation
benchmarks:

* :class:`RandomJobPolicy` — a null baseline: any structured policy
  should beat it on ΔP×T for equal performance cost;
* :class:`FairSharePolicy` — targets the job that has been throttled the
  least so far, addressing §IV.A's fairness complaint about MPC head-on;
* :class:`HybridPolicy` — change-based when a clear riser exists
  (ΔP^t(J) above a threshold), state-based otherwise; combines HRI's
  fairness with MPC's pull-back strength.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies.base import (
    PolicyContext,
    SelectionPolicy,
    register_policy,
)
from repro.core.policies.change_based import HighestRateOfIncreasePolicy
from repro.core.policies.state_based import MostPowerConsumingPolicy
from repro.errors import PolicyError

__all__ = ["RandomJobPolicy", "FairSharePolicy", "HybridPolicy"]


@register_policy("random")
class RandomJobPolicy(SelectionPolicy):
    """Target a uniformly random job with degradable nodes (null baseline).

    Args:
        rng: Random generator; selection draws one uniform index per
            yellow cycle from it.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        if rng is None:
            raise PolicyError("RandomJobPolicy needs an rng")
        self._rng = rng

    def select(self, ctx: PolicyContext) -> np.ndarray:
        eligible = [
            int(jid)
            for jid in ctx.job_table.job_ids
            if len(ctx.degradable_nodes_of_job(int(jid)))
        ]
        if not eligible:
            return self.empty_selection()
        choice = eligible[int(self._rng.integers(0, len(eligible)))]
        return ctx.degradable_nodes_of_job(choice)


@register_policy("fair")
class FairSharePolicy(SelectionPolicy):
    """Target the job throttled least often so far.

    Keeps a per-job hit counter across cycles; among jobs with degradable
    nodes, picks the minimum ``(hits, job_id)``.  :meth:`reset` clears
    the counters (called between experiment runs).
    """

    def __init__(self) -> None:
        self._hits: dict[int, int] = {}

    def select(self, ctx: PolicyContext) -> np.ndarray:
        best: tuple[int, int] | None = None
        for jid in ctx.job_table.job_ids:
            jid = int(jid)
            if len(ctx.degradable_nodes_of_job(jid)) == 0:
                continue
            key = (self._hits.get(jid, 0), jid)
            if best is None or key < best:
                best = key
        if best is None:
            return self.empty_selection()
        chosen = best[1]
        self._hits[chosen] = self._hits.get(chosen, 0) + 1
        return ctx.degradable_nodes_of_job(chosen)

    def reset(self) -> None:
        self._hits.clear()


@register_policy("hybrid")
class HybridPolicy(SelectionPolicy):
    """HRI when a job is clearly surging, MPC otherwise.

    Args:
        rate_threshold: Minimum ΔP^t(J) for the change-based branch to
            engage; below it the power rise is ambient noise and the
            state-based branch gives the stronger pull-back.
    """

    def __init__(self, rate_threshold: float = 0.05) -> None:
        if rate_threshold < 0:
            raise PolicyError("rate_threshold must be non-negative")
        self._rate_threshold = float(rate_threshold)
        self._hri = HighestRateOfIncreasePolicy()
        self._mpc = MostPowerConsumingPolicy()

    def select(self, ctx: PolicyContext) -> np.ndarray:
        rates = ctx.job_increase_rates()
        if rates and max(rates.values()) >= self._rate_threshold:
            selection = self._hri.select(ctx)
            if len(selection):
                return selection
        return self._mpc.select(ctx)
