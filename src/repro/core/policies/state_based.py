"""State-based single-job policies: MPC, LPC, BFP (§IV.A).

All three rank *jobs* by their current estimated power ``Power(J) =
Σ_{x ∈ Nodes(J)} P(x)`` and select every degradable node of one job — the
paper's key insight being that for a well-balanced application, degrading
one node already bottlenecks the job, so degrading all of its nodes costs
the same performance while saving much more power.

* **MPC** targets the most power-consuming job — fastest pull-back;
* **LPC** targets the least power-consuming job — gentlest, least likely
  to oscillate between green and yellow;
* **BFP** targets the job whose one-level savings is *just above* the
  deficit ``P − P_L`` — the compromise between the two.

If the top-ranked job has no degradable node (all its nodes already at
the lowest level), the policies fall through to the next job in rank
order, so a selection is produced whenever any degradable busy node
exists.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies.base import (
    PolicyContext,
    SelectionPolicy,
    register_policy,
)

__all__ = [
    "MostPowerConsumingPolicy",
    "LeastPowerConsumingPolicy",
    "BestFitPolicy",
]


class _RankedJobPolicy(SelectionPolicy):
    """Shared fall-through logic: walk jobs in rank order, take the first
    with a non-empty degradable node set."""

    def _ranked_jobs(self, ctx: PolicyContext) -> np.ndarray:
        raise NotImplementedError

    def select(self, ctx: PolicyContext) -> np.ndarray:
        for job_id in self._ranked_jobs(ctx):
            nodes = ctx.degradable_nodes_of_job(int(job_id))
            if len(nodes):
                return nodes
        return self.empty_selection()


@register_policy("mpc")
class MostPowerConsumingPolicy(_RankedJobPolicy):
    """MPC: target the nodes of the most power-consuming job."""

    def _ranked_jobs(self, ctx: PolicyContext) -> np.ndarray:
        return ctx.job_table.sorted_by_power(descending=True)


@register_policy("lpc")
class LeastPowerConsumingPolicy(_RankedJobPolicy):
    """LPC: target the nodes of the least power-consuming job."""

    def _ranked_jobs(self, ctx: PolicyContext) -> np.ndarray:
        return ctx.job_table.sorted_by_power(descending=False)


@register_policy("bfp")
class BestFitPolicy(SelectionPolicy):
    """BFP: the job whose savings best fit the deficit ``P − P_L``.

    Selection rule: among jobs whose one-level savings meet or exceed the
    deficit, pick the one with the *smallest* such savings ("just
    above").  If no job covers the deficit alone, pick the job with the
    largest savings (closest from below).  Ties break toward the lower
    job id, keeping the policy deterministic.
    """

    def select(self, ctx: PolicyContext) -> np.ndarray:
        deficit = ctx.deficit_w
        best_over: tuple[float, int] | None = None  # (savings, job_id)
        best_under: tuple[float, int] | None = None  # (-savings, job_id)
        for job_id in ctx.job_table.job_ids:
            jid = int(job_id)
            savings = ctx.savings_of_job(jid)
            if savings <= 0.0:
                continue  # nothing degradable in this job
            if savings >= deficit:
                key = (savings, jid)
                if best_over is None or key < best_over:
                    best_over = key
            else:
                key = (-savings, jid)
                if best_under is None or key < best_under:
                    best_under = key
        chosen = best_over or best_under
        if chosen is None:
            return self.empty_selection()
        return ctx.degradable_nodes_of_job(chosen[1])
