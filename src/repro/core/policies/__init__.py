"""Target-set selection policies (§IV).

When the system enters the yellow state, the capping algorithm asks a
policy which candidate nodes to degrade by one level.  The paper defines
two families and we implement every member it names, plus the extensions
its future-work section calls for:

**State-based** (§IV.A) — rank jobs by *current* power:

* ``mpc``   — Most Power-Consuming job;
* ``mpc-c`` — most power-consuming job Collection (Algorithm 2);
* ``lpc``   — Least Power-Consuming job;
* ``lpc-c`` — least power-consuming job collection;
* ``bfp``   — Best-Fit job (savings just above the deficit ``P − P_L``).

**Change-based** (§IV.B) — rank jobs by *rate of increase* in power:

* ``hri``   — Highest Rate of Increase job;
* ``hri-c`` — highest-rate collection (the counterpart of MPC-C).

**Extensions** (§VI future work: "implementing other selection policies"):

* ``random`` — uniformly random job (null baseline);
* ``fair``   — least-recently-targeted job (spreads the pain);
* ``hybrid`` — HRI when a clear riser exists, MPC otherwise;
* ``sla``    — Ranganathan-style: lowest-priority job first, VIP
  classes optionally never throttled (needs a priority lookup).

Use :func:`make_policy` to construct by name, :func:`available_policies`
to enumerate.
"""

from repro.core.policies.base import (
    PolicyContext,
    SelectionPolicy,
    available_policies,
    make_policy,
    register_policy,
)
from repro.core.policies.change_based import (
    HighestRateCollectionPolicy,
    HighestRateOfIncreasePolicy,
)
from repro.core.policies.collection import (
    LeastPowerCollectionPolicy,
    MostPowerCollectionPolicy,
)
from repro.core.policies.composite import (
    FairSharePolicy,
    HybridPolicy,
    RandomJobPolicy,
)
from repro.core.policies.sla import SlaAwarePolicy
from repro.core.policies.state_based import (
    BestFitPolicy,
    LeastPowerConsumingPolicy,
    MostPowerConsumingPolicy,
)

__all__ = [
    "BestFitPolicy",
    "FairSharePolicy",
    "HighestRateCollectionPolicy",
    "HighestRateOfIncreasePolicy",
    "HybridPolicy",
    "LeastPowerCollectionPolicy",
    "LeastPowerConsumingPolicy",
    "MostPowerCollectionPolicy",
    "MostPowerConsumingPolicy",
    "PolicyContext",
    "RandomJobPolicy",
    "SelectionPolicy",
    "SlaAwarePolicy",
    "available_policies",
    "make_policy",
    "register_policy",
]
