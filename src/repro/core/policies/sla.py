"""SLA-aware target selection (Ranganathan-style, §I.B).

Ranganathan et al. throttle "based on SLA": when power must come down,
the lowest-service-class work pays first, and sufficiently important
work is never degraded at all.  :class:`SlaAwarePolicy` brings that
semantics into the paper's architecture as one more selection policy:

* jobs are ranked by ``(priority ascending, Power(J) descending,
  job_id)`` — the cheapest-to-hurt, most-power-saving job first;
* jobs at or above ``protect_priority`` (if set) are *never* selected,
  a job-granular complement to the node-granular privileged set
  ``A_uncontrollable``.

The policy needs to know each job's priority class; the paper's
telemetry plane does not carry it, so the constructor takes a lookup
callable (typically
:meth:`repro.workload.generator.RandomJobGenerator.priority_of`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.policies.base import (
    PolicyContext,
    SelectionPolicy,
    register_policy,
)
from repro.errors import PolicyError

__all__ = ["SlaAwarePolicy"]


@register_policy("sla")
class SlaAwarePolicy(SelectionPolicy):
    """Throttle the least-important job first; protect the VIP class.

    Args:
        priority_of: Maps a job id to its priority class (higher = more
            important).
        protect_priority: Jobs with priority >= this are never selected;
            ``None`` disables protection (pure ordering).
    """

    def __init__(
        self,
        priority_of: Callable[[int], int],
        protect_priority: int | None = None,
    ) -> None:
        if priority_of is None:
            raise PolicyError("SlaAwarePolicy needs a priority lookup")
        self._priority_of = priority_of
        self._protect = protect_priority

    def select(self, ctx: PolicyContext) -> np.ndarray:
        table = ctx.job_table
        ranked: list[tuple[int, float, int]] = []
        for job_id in table.job_ids:
            jid = int(job_id)
            priority = int(self._priority_of(jid))
            if self._protect is not None and priority >= self._protect:
                continue
            ranked.append((priority, -table.power_of(jid), jid))
        ranked.sort()
        for _, _, jid in ranked:
            nodes = ctx.degradable_nodes_of_job(jid)
            if len(nodes):
                return nodes
        return self.empty_selection()
