"""Policy interface, shared selection context, and the policy registry.

A policy sees one :class:`PolicyContext` per yellow cycle and returns the
node ids to degrade by one level.  The context wraps the current (and
previous) telemetry snapshots with lazily-computed, cached derived
quantities every policy needs — per-node power estimates, one-level
savings, the per-job power table, per-job increase rates and the
degradability mask — so that policies stay small and share vectorised
plumbing.

Contract for every policy (asserted by the test suite's property tests):

* returned ids are a subset of the snapshot's monitored nodes;
* no idle node is ever selected ("a valid target set selection policy
  shall not select an idle node as a target", §III.B);
* no node already at its lowest level is selected (it "cannot be
  degraded any further");
* selection is deterministic given the context (except ``random``, which
  draws from its injected rng stream).
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.cluster.engine import canonical_power_sum
from repro.core.thresholds import PowerThresholds
from repro.errors import PolicyError
from repro.power.estimator import JobPowerTable, NodePowerEstimator
from repro.telemetry.collector import TelemetrySnapshot

__all__ = [
    "PolicyContext",
    "SelectionPolicy",
    "register_policy",
    "make_policy",
    "available_policies",
]

_EMPTY = np.empty(0, dtype=np.int64)


class PolicyContext:
    """Everything a selection policy may consult for one yellow cycle.

    Args:
        snapshot: Current telemetry snapshot of the candidate set (``t``).
        previous: Previous snapshot (``t−1``) or None on the first cycle.
        estimator: Formula (1) estimator.
        system_power: The metered total power ``P``, watts.
        thresholds: Current ``(P_L, P_H)``.
    """

    def __init__(
        self,
        snapshot: TelemetrySnapshot,
        previous: TelemetrySnapshot | None,
        estimator: NodePowerEstimator,
        system_power: float,
        thresholds: PowerThresholds,
    ) -> None:
        self.snapshot = snapshot
        self.previous = previous
        self.estimator = estimator
        self.system_power = float(system_power)
        self.thresholds = thresholds
        self._node_power: np.ndarray | None = None
        self._savings: np.ndarray | None = None
        self._job_table: JobPowerTable | None = None
        self._prev_job_table: JobPowerTable | None = None
        self._rates: dict[int, float] | None = None

    # ------------------------------------------------------------------
    # Derived quantities (lazy, cached)
    # ------------------------------------------------------------------
    @property
    def deficit_w(self) -> float:
        """``P − P_L``: watts to shed to get back to green (≥ 0)."""
        return max(0.0, self.system_power - self.thresholds.p_low)

    @property
    def node_power(self) -> np.ndarray:
        """Estimated power of each monitored node, snapshot order."""
        if self._node_power is None:
            s = self.snapshot
            self._node_power = self.estimator.estimate_nodes(
                s.level, s.cpu_util, s.mem_frac, s.nic_frac, node_ids=s.node_ids
            )
        return self._node_power

    @property
    def node_savings(self) -> np.ndarray:
        """Watts each monitored node saves if degraded one level."""
        if self._savings is None:
            s = self.snapshot
            self._savings = self.estimator.estimate_savings(
                s.level, s.cpu_util, s.mem_frac, s.nic_frac, node_ids=s.node_ids
            )
        return self._savings

    @property
    def job_table(self) -> JobPowerTable:
        """``Power(J)`` per running job visible in the snapshot."""
        if self._job_table is None:
            self._job_table = self.estimator.engine.aggregate_by_job(
                self.snapshot.job_id, self.node_power
            )
        return self._job_table

    @property
    def previous_job_table(self) -> JobPowerTable | None:
        """``Power(J)`` per job from the *previous* snapshot (or None)."""
        if self._prev_job_table is None and self.previous is not None:
            p = self.previous
            prev_power = self.estimator.estimate_nodes(
                p.level, p.cpu_util, p.mem_frac, p.nic_frac, node_ids=p.node_ids
            )
            self._prev_job_table = self.estimator.engine.aggregate_by_job(
                p.job_id, prev_power
            )
        return self._prev_job_table

    def job_increase_rates(self) -> dict[int, float]:
        """``ΔP^t(J) = (P^t(J) − P^{t−1}(J)) / P^{t−1}(J)`` per job.

        Only jobs present in both snapshots with positive previous power
        appear; empty when no previous snapshot exists.
        """
        if self._rates is None:
            rates: dict[int, float] = {}
            prev = self.previous_job_table
            if prev is not None:
                cur = self.job_table
                for job_id in cur.job_ids:
                    jid = int(job_id)
                    if jid in prev and prev.power_of(jid) > 0.0:
                        p_prev = prev.power_of(jid)
                        rates[jid] = (cur.power_of(jid) - p_prev) / p_prev
            self._rates = rates
        return self._rates

    # ------------------------------------------------------------------
    # Node selection helpers
    # ------------------------------------------------------------------
    def degradable_mask(self) -> np.ndarray:
        """Mask over snapshot entries: busy and not at the lowest level."""
        s = self.snapshot
        return (s.job_id >= 0) & (s.level > 0)

    def degradable_nodes_of_job(self, job_id: int) -> np.ndarray:
        """``Nodes(J)`` ∩ degradable, as *node ids* (ascending)."""
        s = self.snapshot
        mask = (s.job_id == int(job_id)) & (s.level > 0)
        return np.sort(s.node_ids[mask])

    def savings_of_job(self, job_id: int) -> float:
        """Σ over the job's degradable nodes of one-level savings, watts.

        Accumulated in the canonical ascending-node-id order so both
        engines (and any snapshot permutation) agree bit for bit.
        """
        s = self.snapshot
        mask = (s.job_id == int(job_id)) & (s.level > 0)
        return canonical_power_sum(self.node_savings[mask], s.node_ids[mask])


class SelectionPolicy(abc.ABC):
    """Base class of all target-set selection policies."""

    #: Registry name; set by subclasses.
    name: str = ""

    @abc.abstractmethod
    def select(self, ctx: PolicyContext) -> np.ndarray:
        """Return node ids to degrade one level (possibly empty)."""

    def reset(self) -> None:
        """Clear any cross-cycle state (default: stateless no-op)."""

    @staticmethod
    def empty_selection() -> np.ndarray:
        """The canonical empty target set."""
        return _EMPTY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[..., SelectionPolicy]] = {}


def register_policy(name: str) -> Callable[[type], type]:
    """Class decorator registering a policy under ``name``."""

    def decorator(cls: type) -> type:
        if name in _REGISTRY:
            raise PolicyError(f"policy name {name!r} registered twice")
        if not issubclass(cls, SelectionPolicy):
            raise PolicyError(f"{cls.__name__} is not a SelectionPolicy")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def make_policy(name: str, **kwargs) -> SelectionPolicy:
    """Construct a registered policy by name.

    Extra keyword arguments are forwarded to the policy constructor
    (e.g. ``rng=`` for ``random``).

    Raises:
        PolicyError: for unknown names.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise PolicyError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        )
    return factory(**kwargs)


def available_policies() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(_REGISTRY)
