"""DVFS actuation: applying capping decisions to the machine.

On the paper's platform "the power manager will send commands to all
nodes in the A_target, and tell them to regulate their power state to the
corresponding target level" (§III.A), each level being one processor
frequency step.  Here the actuator writes the commanded levels into the
cluster state — atomically for the whole target set, matching the paper's
property that the algorithm "regulates the power states of all nodes in
the system synchronously" — and keeps actuation statistics the
experiments report (commands issued, degrade/upgrade totals).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.capping import CappingAction, CappingDecision
from repro.errors import PowerManagementError

__all__ = ["DvfsActuator"]


class DvfsActuator:
    """Applies :class:`~repro.core.capping.CappingDecision` to the state."""

    def __init__(self, state: ClusterState) -> None:
        self._state = state
        self._commands_sent = 0
        self._levels_lowered = 0
        self._levels_raised = 0
        self._emergencies = 0

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def commands_sent(self) -> int:
        """Total per-node DVFS commands issued."""
        return self._commands_sent

    @property
    def levels_lowered(self) -> int:
        """Cumulative levels removed across all degrade commands."""
        return self._levels_lowered

    @property
    def levels_raised(self) -> int:
        """Cumulative levels restored across all upgrade commands."""
        return self._levels_raised

    @property
    def emergencies(self) -> int:
        """Number of red-state (emergency) actuations."""
        return self._emergencies

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def apply(self, decision: CappingDecision) -> None:
        """Issue the decision's DVFS commands.

        Raises:
            PowerManagementError: if a command addresses a privileged
                (uncontrollable) node — by construction that cannot
                happen with targets drawn from ``A_candidate``, so it
                indicates a wiring bug and must not be silently ignored.
        """
        if decision.action is CappingAction.NONE or decision.num_targets == 0:
            return
        ids = decision.node_ids
        if not np.all(self._state.controllable[ids]):
            raise PowerManagementError(
                "capping decision addresses a privileged node"
            )
        before = self._state.level[ids].copy()
        self._state.set_levels(ids, decision.new_levels)
        delta = self._state.level[ids] - before
        self._commands_sent += len(ids)
        self._levels_lowered += int(-delta[delta < 0].sum())
        self._levels_raised += int(delta[delta > 0].sum())
        if decision.action is CappingAction.EMERGENCY:
            self._emergencies += 1
