"""DVFS actuation: applying capping decisions to the machine.

On the paper's platform "the power manager will send commands to all
nodes in the A_target, and tell them to regulate their power state to the
corresponding target level" (§III.A), each level being one processor
frequency step.  Here the actuator writes the commanded levels into the
cluster state — atomically for the whole target set, matching the paper's
property that the algorithm "regulates the power states of all nodes in
the system synchronously" — and keeps actuation statistics the
experiments report (commands issued, degrade/upgrade totals).

On a real machine a commanded level does not always land: the RPC is
dropped, the node's management daemon is wedged, or the write arrives
cycles late.  The actuator therefore **verifies every command by
readback** (commanded vs. post-write level) and re-issues verified-lost
commands with exponential backoff in control cycles — capped at
``max_backoff_cycles`` so a long outage cannot schedule absurdly distant
retries — bounded by ``max_retries`` re-issues, after which the command
is dropped and counted in ``abandoned_commands``; a newer command to the
same node supersedes any pending re-issue.  It also enforces the
degraded-mode safety clamp: a command that would *raise* a node's actual
level only lands if the caller marked that node's telemetry as fresh
(``raise_ok``), so stale data can never upgrade a node — not even
through a yellow-cycle command computed from an out-of-date snapshot.

The actuator is also where the high-availability layer's **fencing
tokens** (:mod:`repro.ha`) bite.  The actuator models the command path
shared by every incarnation of the power manager, so it carries a
monotone ``epoch``; each command is stamped with its issuer's epoch, and
a command from any epoch other than the current one — a batch from a
deposed primary, or a pre-crash command still in flight when the
successor takes over — is rejected and counted in ``fenced_commands``
instead of landing.  A single manager (epoch never advanced) never
triggers fencing.  Every :meth:`apply` returns an
:class:`ActuationReport` separating effective, no-op, suppressed, lost,
delayed and fenced commands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.capping import CappingAction, CappingDecision
from repro.errors import ConfigurationError, PowerManagementError
from repro.faults.injector import FaultInjector
from repro.obs.facade import Observability, resolve_obs

__all__ = ["ActuationReport", "DvfsActuator"]


@dataclass(frozen=True)
class ActuationReport:
    """What happened to one decision's batch of DVFS commands.

    Attributes:
        commands: Pairs ``(i, l)`` the decision addressed.
        effective: Commands that landed and changed the node's level.
        noop: Commands that landed but found the node already at the
            commanded level (previously counted silently as "sent").
        suppressed: Commands clamped to no-ops by the never-upgrade-on-
            stale-data guard.
        lost: Commands that failed readback verification this cycle
            (queued for re-issue unless retries are exhausted).
        delayed: Commands in flight, landing in a later cycle.
        fenced: Commands rejected because their issuer's epoch is not
            the actuator's current fencing epoch (deposed controller).
    """

    commands: int = 0
    effective: int = 0
    noop: int = 0
    suppressed: int = 0
    lost: int = 0
    delayed: int = 0
    fenced: int = 0

    @property
    def landed(self) -> int:
        """Commands that reached the node this cycle (any outcome)."""
        return self.effective + self.noop + self.suppressed


_EMPTY_REPORT = ActuationReport()


@dataclass
class _PendingCommand:
    """One in-flight or to-be-retried DVFS command."""

    node_id: int
    level: int
    raise_ok: bool
    attempts: int  #: issue attempts made so far (first issue = 1)
    due_cycle: int
    epoch: int = 0  #: fencing epoch of the issuing manager


class DvfsActuator:
    """Applies :class:`~repro.core.capping.CappingDecision` to the state.

    Args:
        state: The cluster state to actuate.
        fault_injector: Optional fault injector deciding per-command
            loss/delay; ``None`` (the default) actuates perfectly.
        max_retries: Bound on re-issues of a verified-lost command; the
            k-th retry waits ``2^(k−1)`` cycles (exponential backoff).
        max_backoff_cycles: Ceiling on any single retry's backoff wait,
            in cycles, so high retry counts (or a long meter outage
            stretching the control cadence) cannot schedule a retry
            absurdly far in the future.
        obs: Observability facade; when its metric registry is live the
            actuator's statistics are mirrored as export-time collected
            series (zero per-command cost).
    """

    def __init__(
        self,
        state: ClusterState,
        fault_injector: FaultInjector | None = None,
        max_retries: int = 3,
        max_backoff_cycles: int = 16,
        obs: Observability | None = None,
    ) -> None:
        if max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if max_backoff_cycles < 1:
            raise ConfigurationError("max_backoff_cycles must be >= 1")
        self._state = state
        self._injector = fault_injector
        self._max_attempts = 1 + int(max_retries)
        self._max_backoff = int(max_backoff_cycles)
        self._cycle = 0
        self._epoch = 0
        self._pending: list[_PendingCommand] = []
        self._live_raise_ok: np.ndarray | None = None
        self._commands_sent = 0
        self._levels_lowered = 0
        self._levels_raised = 0
        self._emergencies = 0
        self._effective = 0
        self._noops = 0
        self._suppressed = 0
        self._lost = 0
        self._retried = 0
        self._abandoned = 0
        self._fenced = 0
        self._last_landing: tuple[int, int] | None = None  #: (cycle, epoch)
        self._epoch_conflicts = 0
        self._register_metrics(resolve_obs(obs))

    def _register_metrics(self, obs: Observability) -> None:
        """Mirror the actuation statistics as collected metric series.

        Re-registration (a successor manager sharing the live actuator
        after failover) rebinds the callbacks, so the exported values
        always read the live object.
        """
        if not obs.metrics_on:
            return
        reg = obs.metrics
        by_result = {
            "effective": lambda: float(self._effective),
            "noop": lambda: float(self._noops),
            "suppressed": lambda: float(self._suppressed),
            "lost": lambda: float(self._lost),
            "abandoned": lambda: float(self._abandoned),
            "fenced": lambda: float(self._fenced),
        }
        for result, fn in by_result.items():
            reg.counter_func(
                "repro_dvfs_commands_total",
                "DVFS commands by final outcome",
                fn,
                labels={"result": result},
            )
        reg.counter_func(
            "repro_dvfs_levels_total",
            "Cumulative DVFS level steps by direction",
            lambda: float(self._levels_lowered),
            labels={"direction": "lower"},
        )
        reg.counter_func(
            "repro_dvfs_levels_total",
            "Cumulative DVFS level steps by direction",
            lambda: float(self._levels_raised),
            labels={"direction": "raise"},
        )
        reg.counter_func(
            "repro_dvfs_retried_total",
            "Commands that landed only after at least one re-issue",
            lambda: float(self._retried),
        )
        reg.counter_func(
            "repro_dvfs_emergencies_total",
            "Red-state (emergency) actuations",
            lambda: float(self._emergencies),
        )
        reg.counter_func(
            "repro_fencing_epoch_conflicts_total",
            "Cycles in which two epochs landed commands (must stay 0)",
            lambda: float(self._epoch_conflicts),
        )
        reg.gauge_func(
            "repro_dvfs_pending_commands",
            "Commands queued (delayed or awaiting retry)",
            lambda: float(len(self._pending)),
        )
        reg.gauge_func(
            "repro_fencing_epoch",
            "Current actuator fencing epoch",
            lambda: float(self._epoch),
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def commands_sent(self) -> int:
        """Total per-node DVFS commands issued (first issues only)."""
        return self._commands_sent

    @property
    def levels_lowered(self) -> int:
        """Cumulative levels removed across all degrade commands."""
        return self._levels_lowered

    @property
    def levels_raised(self) -> int:
        """Cumulative levels restored across all upgrade commands."""
        return self._levels_raised

    @property
    def emergencies(self) -> int:
        """Number of red-state (emergency) actuations."""
        return self._emergencies

    @property
    def effective_commands(self) -> int:
        """Commands that landed and changed a level."""
        return self._effective

    @property
    def noop_commands(self) -> int:
        """Commands that landed on a node already at the commanded level."""
        return self._noops

    @property
    def suppressed_commands(self) -> int:
        """Commands clamped by the never-upgrade-on-stale guard."""
        return self._suppressed

    @property
    def lost_commands(self) -> int:
        """Loss events across first issues and retries."""
        return self._lost

    @property
    def retried_commands(self) -> int:
        """Commands that landed only after at least one re-issue."""
        return self._retried

    @property
    def abandoned_commands(self) -> int:
        """Commands dropped after exhausting their retries."""
        return self._abandoned

    @property
    def fenced_commands(self) -> int:
        """Commands rejected by the fencing epoch (deposed issuer)."""
        return self._fenced

    @property
    def pending_commands(self) -> int:
        """Commands currently queued (delayed or awaiting retry)."""
        return len(self._pending)

    @property
    def stale_pending_commands(self) -> int:
        """Queued commands whose issuer epoch is no longer current.

        These will be fenced when they come due (or superseded); they
        can never land.
        """
        return sum(1 for p in self._pending if p.epoch != self._epoch)

    @property
    def epoch_conflicts(self) -> int:
        """Cycles in which commands from two different epochs landed.

        The fencing invariant makes this impossible — a landing always
        carries the current epoch and the epoch only advances between
        takeovers — so any non-zero value marks a broken invariant.
        Exposed so the failover benchmarks can assert it stayed zero.
        """
        return self._epoch_conflicts

    # ------------------------------------------------------------------
    # Fencing epoch
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The current fencing epoch (0 until the first takeover)."""
        return self._epoch

    def advance_epoch(self) -> int:
        """Start a new fencing epoch and return it.

        Called by the HA layer when a successor manager takes over.
        Everything still queued from previous epochs becomes
        unlandable: it is fenced when due, rather than purged now, so
        the accounting reflects *when* each zombie command actually
        arrived at the node.
        """
        self._epoch += 1
        return self._epoch

    # ------------------------------------------------------------------
    # The cycle clock: land delayed/retried commands
    # ------------------------------------------------------------------
    def begin_cycle(self, raise_ok: np.ndarray | None = None) -> int:
        """Advance one control cycle and flush due in-flight commands.

        Called by the manager once per cycle, after the telemetry sweep,
        so a late-landing raise is clamped against the *current* cycle's
        staleness (``raise_ok``) as well as the freshness recorded when
        the command was issued — a node that went stale while its
        command was in flight can still not be upgraded.

        Args:
            raise_ok: This cycle's per-node raise permission mask (see
                :meth:`apply`); ``None`` defers to issue-time freshness
                alone.

        Returns:
            Number of commands that landed this flush.
        """
        self._cycle += 1
        self._live_raise_ok = raise_ok
        if not self._pending:
            return 0
        due = [p for p in self._pending if p.due_cycle <= self._cycle]
        if not due:
            return 0
        self._pending = [p for p in self._pending if p.due_cycle > self._cycle]
        # Fence zombie commands from deposed epochs before they can
        # touch the machine (and before they consume loss/delay draws —
        # the network outcome of a rejected command is irrelevant).
        fenced = [p for p in due if p.epoch != self._epoch]
        self._fenced += len(fenced)
        due = [p for p in due if p.epoch == self._epoch]
        if not due:
            return 0
        if self._injector is not None:
            ids = np.asarray([p.node_id for p in due], dtype=np.int64)
            lost, delayed = self._injector.command_outcomes(ids)
        else:  # pragma: no cover - pending implies an injector
            lost = delayed = np.zeros(len(due), dtype=bool)
        landed = 0
        for k, cmd in enumerate(due):
            if lost[k]:
                self._lost += 1
                self._requeue_or_abandon(cmd)
            elif delayed[k]:
                cmd.due_cycle = self._cycle + self._injector.command_delay_cycles
                self._pending.append(cmd)
            else:
                self._land(cmd)
                landed += 1
        return landed

    def _requeue_or_abandon(self, cmd: _PendingCommand) -> None:
        cmd.attempts += 1
        if cmd.attempts > self._max_attempts:
            self._abandoned += 1
            return
        # Exponential backoff: the k-th retry waits 2^(k-1) cycles,
        # capped so deep retry chains stay within a bounded horizon.
        backoff = min(2 ** (cmd.attempts - 2), self._max_backoff)
        cmd.due_cycle = self._cycle + backoff
        self._pending.append(cmd)

    def _note_landing(self, epoch: int) -> None:
        """Track landings per cycle to witness the one-epoch invariant."""
        if (
            self._last_landing is not None
            and self._last_landing[0] == self._cycle
            and self._last_landing[1] != epoch
        ):
            self._epoch_conflicts += 1
        self._last_landing = (self._cycle, epoch)

    def _land(self, cmd: _PendingCommand) -> None:
        """Write one late command, re-applying the raise clamp."""
        self._note_landing(cmd.epoch)
        current = int(self._state.level[cmd.node_id])
        target = cmd.level
        allow_raise = cmd.raise_ok and (
            self._live_raise_ok is None or bool(self._live_raise_ok[cmd.node_id])
        )
        if target > current and not allow_raise:
            self._suppressed += 1
            return
        if target == current:
            self._noops += 1
        else:
            self._state.set_level(cmd.node_id, target)
            self._effective += 1
            if target < current:
                self._levels_lowered += current - target
            else:
                self._levels_raised += target - current
        if cmd.attempts > 1:
            self._retried += 1

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def apply(
        self,
        decision: CappingDecision,
        raise_ok: np.ndarray | None = None,
        epoch: int | None = None,
    ) -> ActuationReport:
        """Issue the decision's DVFS commands and verify by readback.

        Args:
            decision: The capping decision to actuate.
            raise_ok: Optional per-node mask (over *all* node ids);
                where False, a command may not raise that node's actual
                level (its telemetry is stale or sensing is degraded).
                ``None`` permits raises everywhere — the fault-free
                contract, where snapshot and actual levels coincide.
            epoch: The issuing manager's fencing epoch; ``None`` (the
                default, for non-HA callers) means the current epoch.
                A batch from any other epoch is rejected wholesale.

        Returns:
            The batch's :class:`ActuationReport`.

        Raises:
            PowerManagementError: if a command addresses a privileged
                (uncontrollable) node — by construction that cannot
                happen with targets drawn from ``A_candidate``, so it
                indicates a wiring bug and must not be silently ignored.
        """
        if decision.action is CappingAction.NONE or decision.num_targets == 0:
            return _EMPTY_REPORT
        ids = decision.node_ids
        n = len(ids)
        if epoch is not None and int(epoch) != self._epoch:
            # A deposed manager's whole batch bounces off the fence; the
            # machine is untouched and no pending state is disturbed.
            self._fenced += n
            return ActuationReport(commands=n, fenced=n)
        if not np.all(self._state.controllable[ids]):
            raise PowerManagementError(
                "capping decision addresses a privileged node"
            )
        # A fresh command supersedes anything still in flight for the
        # same nodes — the controller's latest word wins.  A superseded
        # command from a deposed epoch counts as fenced: it was in
        # flight at takeover and has now been rejected.
        if self._pending:
            addressed = set(int(i) for i in ids)
            kept: list[_PendingCommand] = []
            for p in self._pending:
                if p.node_id in addressed:
                    if p.epoch != self._epoch:
                        self._fenced += 1
                else:
                    kept.append(p)
            self._pending = kept

        if self._injector is not None:
            lost, delayed = self._injector.command_outcomes(ids)
        else:
            lost = delayed = np.zeros(n, dtype=bool)
        deliver = ~(lost | delayed)

        current = self._state.level[ids].copy()
        target = np.asarray(decision.new_levels, dtype=np.int64).copy()
        allow = (
            np.ones(n, dtype=bool) if raise_ok is None else raise_ok[ids]
        )
        blocked = (target > current) & ~allow
        target[blocked] = current[blocked]

        d_ids = ids[deliver]
        if len(d_ids):
            self._note_landing(self._epoch)
        before = current[deliver]
        self._state.set_levels(d_ids, target[deliver])
        # Readback verification: what actually landed this cycle.
        delta = self._state.level[d_ids] - before
        self._commands_sent += n
        self._levels_lowered += int(-delta[delta < 0].sum())
        self._levels_raised += int(delta[delta > 0].sum())
        effective = int(np.count_nonzero(delta))
        suppressed = int(blocked[deliver].sum())
        noop = int(len(d_ids) - effective - suppressed)
        self._effective += effective
        self._noops += noop
        self._suppressed += suppressed
        self._lost += int(lost.sum())
        if decision.action is CappingAction.EMERGENCY:
            self._emergencies += 1

        # Queue losses for re-issue and delays for late landing.  The
        # *commanded* level is kept (not the clamped one): the clamp is
        # re-evaluated against the node's actual level at landing time.
        levels = decision.new_levels
        for k in np.flatnonzero(lost):
            self._requeue_or_abandon(
                _PendingCommand(
                    node_id=int(ids[k]),
                    level=int(levels[k]),
                    raise_ok=bool(allow[k]),
                    attempts=1,
                    due_cycle=self._cycle,
                    epoch=self._epoch,
                )
            )
        if delayed.any():
            due = self._cycle + self._injector.command_delay_cycles
            for k in np.flatnonzero(delayed):
                self._pending.append(
                    _PendingCommand(
                        node_id=int(ids[k]),
                        level=int(levels[k]),
                        raise_ok=bool(allow[k]),
                        attempts=1,
                        due_cycle=due,
                        epoch=self._epoch,
                    )
                )
        return ActuationReport(
            commands=n,
            effective=effective,
            noop=noop,
            suppressed=suppressed,
            lost=int(lost.sum()),
            delayed=int(delayed.sum()),
        )

    # ------------------------------------------------------------------
    # Release (end-of-run teardown, still epoch-fenced)
    # ------------------------------------------------------------------
    def release(
        self,
        node_ids: np.ndarray,
        level: int,
        epoch: int | None = None,
    ) -> int:
        """Restore ``node_ids`` to ``level`` through the fenced path.

        End-of-episode teardown is still a command to the machine, so it
        goes through the same fence as :meth:`apply`: a deposed manager
        cannot "release" nodes it no longer owns.  Unlike :meth:`apply`
        it is not a control command — it bypasses loss/delay injection
        and the regular command statistics (the run is over; there is no
        later cycle to retry in).

        Args:
            node_ids: Nodes to restore (typically ``A_candidate``).
            level: The level to restore them to (typically the top).
            epoch: The caller's fencing epoch; ``None`` means current.

        Returns:
            The number of nodes written (0 when the batch was fenced).
        """
        n = len(node_ids)
        if n == 0:
            return 0
        if epoch is not None and int(epoch) != self._epoch:
            self._fenced += n
            return 0
        self._state.set_levels(node_ids, level)
        return n

    # ------------------------------------------------------------------
    # Crash recovery (repro.ha state journal)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Cycle clock, counters and the in-flight queue, journal-ready.

        ``epoch`` is deliberately absent: the fencing epoch belongs to
        the command path itself, not to any one manager incarnation, and
        is advanced — never restored — at takeover.
        """
        return {
            "cycle": self._cycle,
            "pending": tuple(
                (p.node_id, p.level, p.raise_ok, p.attempts, p.due_cycle, p.epoch)
                for p in self._pending
            ),
            "counters": {
                "commands_sent": self._commands_sent,
                "levels_lowered": self._levels_lowered,
                "levels_raised": self._levels_raised,
                "emergencies": self._emergencies,
                "effective": self._effective,
                "noops": self._noops,
                "suppressed": self._suppressed,
                "lost": self._lost,
                "retried": self._retried,
                "abandoned": self._abandoned,
                "fenced": self._fenced,
            },
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Adopt a :meth:`state_dict` (fresh actuator of a successor).

        When the successor shares the live actuator object (the normal
        HA wiring — in-flight commands survive the controller, they are
        *in the network*), restoring is an idempotent overwrite with the
        journal's identical view.
        """
        self._cycle = int(state["cycle"])
        self._pending = [
            _PendingCommand(
                node_id=int(n), level=int(l), raise_ok=bool(r),
                attempts=int(a), due_cycle=int(d), epoch=int(e),
            )
            for n, l, r, a, d, e in state["pending"]
        ]
        c = state["counters"]
        self._commands_sent = int(c["commands_sent"])
        self._levels_lowered = int(c["levels_lowered"])
        self._levels_raised = int(c["levels_raised"])
        self._emergencies = int(c["emergencies"])
        self._effective = int(c["effective"])
        self._noops = int(c["noops"])
        self._suppressed = int(c["suppressed"])
        self._lost = int(c["lost"])
        self._retried = int(c["retried"])
        self._abandoned = int(c["abandoned"])
        self._fenced = int(c["fenced"])
