"""Power consumption states: green / yellow / red (§II.B).

Two thresholds split the power axis into three regimes:

* **GREEN** (``P < P_L``) — safe, no action;
* **YELLOW** (``P_L ≤ P < P_H``) — within provision but too close to the
  limit; mild throttling (one level, one policy-selected job);
* **RED** (``P ≥ P_H``) — critical; maximal throttling of every candidate
  immediately.
"""

from __future__ import annotations

import enum

from repro.errors import PowerManagementError

__all__ = ["PowerState", "classify_power_state"]


class PowerState(enum.Enum):
    """The three §II.B power-consumption states."""

    GREEN = "green"
    YELLOW = "yellow"
    RED = "red"

    @property
    def severity(self) -> int:
        """0 (green) → 2 (red), for ordering and aggregation."""
        return {"green": 0, "yellow": 1, "red": 2}[self.value]


def classify_power_state(power: float, p_low: float, p_high: float) -> PowerState:
    """Classify a power reading against the two thresholds.

    Args:
        power: Measured total system power, watts.
        p_low: ``P_L`` (green/yellow boundary), watts.
        p_high: ``P_H`` (yellow/red boundary), watts.

    Raises:
        PowerManagementError: unless ``0 < p_low <= p_high``.
    """
    if not 0.0 < p_low <= p_high:
        raise PowerManagementError(
            f"thresholds must satisfy 0 < P_L <= P_H, got P_L={p_low}, P_H={p_high}"
        )
    if power < p_low:
        return PowerState.GREEN
    if power < p_high:
        return PowerState.YELLOW
    return PowerState.RED
