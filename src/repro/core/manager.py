"""The assembled power manager: one object, one control cycle.

:class:`PowerManager` wires together everything the architecture diagram
(Figure 1) shows around the global power manager: the system power meter,
the candidate set's telemetry collector, the Formula (1) estimator, the
threshold controller, Algorithm 1, a target-selection policy and the DVFS
actuator.  The experiment harness calls :meth:`PowerManager.control_cycle`
once per control period (normally equal to the sampling interval τ) and
gets back a :class:`CycleReport`; the manager also appends the standard
series (power, state, targets) to its recorder for the metrics layer.

When a :class:`~repro.faults.injector.FaultInjector` is attached, the
manager runs a **degraded-mode fail-safe ladder** on top of Algorithm 1
(knobs in :class:`~repro.faults.degraded.DegradedModeConfig`):

* **meter outage** → the cycle runs on the Formula (1) estimated
  aggregate (§III.B) anchored to the last metered reading; threshold
  learning freezes and no node may be upgraded while estimating;
* **stale telemetry** → a node whose sample is older than the stale-age
  bound is never upgraded (neither by steady-green restore nor by a
  command that would raise its actual level), it simply waits in
  ``A_degraded`` for fresh data;
* **candidate-set blackout** → sustained sub-coverage telemetry forces
  the cycle to red: with the candidate set dark, the safe assumption is
  the worst one.

With no injector attached every rung is compiled out of the path and the
control cycle is bit-for-bit the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.actuator import ActuationReport, DvfsActuator
from repro.core.capping import CappingAction, CappingDecision, PowerCappingAlgorithm
from repro.core.policies.base import PolicyContext, SelectionPolicy
from repro.core.sets import NodeSets
from repro.core.states import PowerState, classify_power_state
from repro.core.thresholds import ThresholdController
from repro.errors import DegradedModeError
from repro.faults.degraded import DegradedModeConfig
from repro.faults.injector import FaultInjector, FaultStats
from repro.power.estimator import NodePowerEstimator
from repro.power.hetero import make_power_model
from repro.power.meter import SystemPowerMeter
from repro.telemetry.collector import TelemetryCollector, TelemetrySnapshot
from repro.telemetry.cost import ManagementCostModel
from repro.telemetry.recorder import TimeSeriesRecorder

__all__ = ["PowerManager", "CycleReport"]

#: Standard recorder series names written by the manager.
SERIES_POWER = "power_w"
SERIES_STATE = "state_severity"
SERIES_TARGETS = "targets"
SERIES_P_LOW = "p_low_w"
SERIES_P_HIGH = "p_high_w"
#: Degraded-mode series, recorded only when a fault injector is attached
#: (so fault-free runs keep the exact seed recorder content).
SERIES_COVERAGE = "telemetry_coverage"
SERIES_DEGRADED = "degraded_sensing"


@dataclass(frozen=True)
class CycleReport:
    """What one control cycle saw and did."""

    time: float
    power_w: float
    state: PowerState
    decision: CappingDecision
    p_low: float
    p_high: float
    #: Whether the power value came from the meter (False = Formula (1)
    #: fallback estimate during a meter outage).
    metered: bool = True
    #: Fraction of candidate agents that reported fresh data.
    coverage: float = 1.0
    #: Whether the blackout rung forced this cycle to red.
    forced_red: bool = False
    #: Outcome of this cycle's DVFS command batch.
    actuation: ActuationReport | None = None

    @property
    def acted(self) -> bool:
        """Whether any DVFS command was issued this cycle."""
        return self.decision.action is not CappingAction.NONE

    @property
    def degraded(self) -> bool:
        """Whether the cycle ran on degraded sensing."""
        return self.forced_red or not self.metered


class PowerManager:
    """The global power manager of the proposed architecture.

    Args:
        cluster: The machine under management.
        sets: Node classification (candidate set = monitored + throttled).
        meter: Whole-system power meter.
        thresholds: Threshold controller (learning or fixed).
        policy: Target-set selection policy for yellow cycles.
        steady_green_cycles: ``T_g`` for Algorithm 1 (paper: 10).
        cost_model: Management-cost accounting (Figure 5); optional.
        recorder: Series recorder; a fresh one is created if omitted.
        fault_injector: Optional fault injector; attaching one arms the
            degraded-mode fail-safe ladder.
        degraded: Ladder thresholds (defaults when omitted).
    """

    def __init__(
        self,
        cluster: Cluster,
        sets: NodeSets,
        meter: SystemPowerMeter,
        thresholds: ThresholdController,
        policy: SelectionPolicy,
        steady_green_cycles: int = 10,
        cost_model: ManagementCostModel | None = None,
        recorder: TimeSeriesRecorder | None = None,
        fault_injector: FaultInjector | None = None,
        degraded: DegradedModeConfig | None = None,
    ) -> None:
        self._cluster = cluster
        self._sets = sets
        self._meter = meter
        self._thresholds = thresholds
        self._policy = policy
        self._injector = fault_injector
        self._degraded_cfg = degraded if degraded is not None else DegradedModeConfig()
        self._collector = TelemetryCollector(
            cluster.state, sets.candidates, cost_model, fault_injector
        )
        self._estimator = NodePowerEstimator(make_power_model(cluster))
        self._capping = PowerCappingAlgorithm(
            sets, cluster.spec.top_level, steady_green_cycles
        )
        self._actuator = DvfsActuator(cluster.state, fault_injector)
        self.recorder = recorder if recorder is not None else TimeSeriesRecorder()
        self._cycles = 0
        self._state_counts = {s: 0 for s in PowerState}
        # Degraded-mode ladder state.
        self._upgradable: np.ndarray | None = None
        self._blackout_streak = 0
        self._forced_red_cycles = 0
        self._estimated_cycles = 0
        self._last_metered_power: float | None = None
        self._last_metered_snapshot: TelemetrySnapshot | None = None
        self._offset_w = 0.0
        self._offset_valid = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sets(self) -> NodeSets:
        """The node-set classification."""
        return self._sets

    @property
    def policy(self) -> SelectionPolicy:
        """The active target-selection policy."""
        return self._policy

    @property
    def thresholds(self) -> ThresholdController:
        """The threshold controller."""
        return self._thresholds

    @property
    def collector(self) -> TelemetryCollector:
        """The candidate-set telemetry collector."""
        return self._collector

    @property
    def actuator(self) -> DvfsActuator:
        """The DVFS actuator (actuation statistics)."""
        return self._actuator

    @property
    def capping(self) -> PowerCappingAlgorithm:
        """The Algorithm 1 instance (``A_degraded``, ``Time_g``)."""
        return self._capping

    @property
    def cycles(self) -> int:
        """Control cycles run so far."""
        return self._cycles

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The attached fault injector (None when fault-free)."""
        return self._injector

    @property
    def forced_red_cycles(self) -> int:
        """Cycles the blackout rung forced to red."""
        return self._forced_red_cycles

    @property
    def estimated_power_cycles(self) -> int:
        """Cycles run on the Formula (1) fallback estimate."""
        return self._estimated_cycles

    def state_count(self, state: PowerState) -> int:
        """Number of cycles classified as ``state``."""
        return self._state_counts[state]

    def ever_entered_red(self) -> bool:
        """Whether any cycle was classified red (§V.D checks this)."""
        return self._state_counts[PowerState.RED] > 0

    def fault_report(self) -> FaultStats | None:
        """Aggregate fault accounting for the run (None when fault-free)."""
        inj = self._injector
        if inj is None:
            return None
        act = self._actuator
        return FaultStats(
            dropped_samples=self._collector.dropped_samples,
            meter_outages=inj.meter_outages,
            meter_outage_cycles=inj.meter_outage_cycles,
            node_crashes=inj.node_crashes,
            offline_node_cycles=inj.offline_node_cycles,
            commands_lost=act.lost_commands,
            commands_retried=act.retried_commands,
            commands_abandoned=act.abandoned_commands,
            forced_red_cycles=self._forced_red_cycles,
            estimated_power_cycles=self._estimated_cycles,
        )

    # ------------------------------------------------------------------
    # The control cycle
    # ------------------------------------------------------------------
    def control_cycle(self, now: float) -> CycleReport:
        """Sense → classify → decide → actuate, and record the series."""
        inj = self._injector
        if inj is not None:
            inj.begin_cycle(now)

        snapshot = self._collector.collect(now)
        metered = inj is None or inj.meter_available()
        if inj is not None:
            # Nodes eligible for an actual level raise this cycle: fresh
            # telemetry, and only while running on a real meter reading.
            allow = np.ones(self._cluster.state.num_nodes, dtype=bool)
            if metered:
                stale = snapshot.stale_mask(self._degraded_cfg.max_stale_age_s)
                allow[snapshot.node_ids[stale]] = False
            else:
                allow[:] = False
            self._upgradable = allow
        else:
            self._upgradable = None
        # Flush in-flight commands after the sweep so late-landing raises
        # are clamped against this cycle's staleness; their effect shows
        # in the next sweep.
        self._actuator.begin_cycle(raise_ok=self._upgradable)

        if metered:
            power = self._meter.read()
            if inj is not None:
                power = inj.perturb_meter(power)
            self._thresholds.observe(power)
            self._last_metered_power = power
            self._last_metered_snapshot = snapshot
            self._offset_valid = False
        else:
            power = self._estimate_system_power(snapshot)
            self._estimated_cycles += 1
        th = self._thresholds.thresholds
        state = classify_power_state(power, th.p_low, th.p_high)

        forced_red = False
        if inj is not None:
            cfg = self._degraded_cfg
            if snapshot.coverage < cfg.blackout_coverage:
                self._blackout_streak += 1
            else:
                self._blackout_streak = 0
            if (
                self._blackout_streak >= cfg.blackout_cycles
                and state is not PowerState.RED
            ):
                state = PowerState.RED
                forced_red = True
                self._forced_red_cycles += 1

        ctx = PolicyContext(
            snapshot=snapshot,
            previous=self._collector.previous,
            estimator=self._estimator,
            system_power=power,
            thresholds=th,
        )
        decision = self._decide(state, ctx)
        actuation = self._actuator.apply(decision, raise_ok=self._upgradable)

        self._cycles += 1
        self._state_counts[state] += 1
        rec = self.recorder
        rec.record(SERIES_POWER, now, power)
        rec.record(SERIES_STATE, now, state.severity)
        rec.record(SERIES_TARGETS, now, decision.num_targets)
        rec.record(SERIES_P_LOW, now, th.p_low)
        rec.record(SERIES_P_HIGH, now, th.p_high)
        if inj is not None:
            rec.record(SERIES_COVERAGE, now, snapshot.coverage)
            rec.record(
                SERIES_DEGRADED, now, 1.0 if (forced_red or not metered) else 0.0
            )
        return CycleReport(
            time=now,
            power_w=power,
            state=state,
            decision=decision,
            p_low=th.p_low,
            p_high=th.p_high,
            metered=metered,
            coverage=snapshot.coverage,
            forced_red=forced_red,
            actuation=actuation,
        )

    def _estimate_system_power(self, snapshot: TelemetrySnapshot) -> float:
        """Formula (1) fallback for total power during a meter outage.

        The candidate set's estimated aggregate tracks the part of the
        system the manager can observe; the remainder (privileged and
        unmonitored nodes) is carried as a constant offset anchored at
        the last metered cycle::

            P ≈ Σ_candidates P_formula1(now) + (P_metered − Σ P_formula1)|_last

        The offset is computed once per outage burst and reused until
        the meter returns.

        Raises:
            DegradedModeError: if there is neither telemetry nor any
                previously metered reading to anchor an estimate.
        """
        if snapshot.size == 0 and self._last_metered_power is None:
            raise DegradedModeError(
                "meter outage with no telemetry and no prior metered "
                "reading: the fail-safe ladder has no estimation basis"
            )
        est = self._candidate_estimate_w(snapshot)
        if not self._offset_valid:
            last = self._last_metered_snapshot
            if self._last_metered_power is not None and last is not None:
                self._offset_w = self._last_metered_power - self._candidate_estimate_w(
                    last
                )
            else:
                self._offset_w = 0.0
            self._offset_valid = True
        return max(0.0, est + self._offset_w)

    def _candidate_estimate_w(self, snapshot: TelemetrySnapshot) -> float:
        """Σ over monitored nodes of the Formula (1) estimate, watts."""
        if snapshot.size == 0:
            return 0.0
        return float(
            self._estimator.estimate_nodes(
                snapshot.level,
                snapshot.cpu_util,
                snapshot.mem_frac,
                snapshot.nic_frac,
                node_ids=snapshot.node_ids,
            ).sum()
        )

    def _decide(self, state: PowerState, ctx: PolicyContext) -> CappingDecision:
        """The decision step of one cycle.

        The default implementation is the paper's Algorithm 1 driven by
        the configured target-selection policy; baseline controllers
        (:mod:`repro.core.baselines`) override this single method and
        inherit all sensing, actuation and reporting machinery —
        including the degraded-mode ladder, whose raise clamp is applied
        at the actuator regardless of how the decision was made.
        """
        return self._capping.decide(
            state, ctx, self._policy, upgradable=self._upgradable
        )

    def reset_episode_state(self) -> None:
        """Clear Algorithm 1 and policy cross-cycle state (new run)."""
        self._capping.reset()
        self._policy.reset()

    def release_all(self) -> None:
        """Restore every candidate node to the top level (end of run)."""
        candidates = self._sets.candidates
        if len(candidates) == 0:
            return
        self._cluster.state.set_levels(
            candidates, self._cluster.spec.top_level
        )
        self._capping.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PowerManager policy={self._policy.name!r} "
            f"candidates={self._sets.size} cycles={self._cycles}>"
        )
