"""The assembled power manager: one object, one control cycle.

:class:`PowerManager` wires together everything the architecture diagram
(Figure 1) shows around the global power manager: the system power meter,
the candidate set's telemetry collector, the Formula (1) estimator, the
threshold controller, Algorithm 1, a target-selection policy and the DVFS
actuator.  The experiment harness calls :meth:`PowerManager.control_cycle`
once per control period (normally equal to the sampling interval τ) and
gets back a :class:`CycleReport`; the manager also appends the standard
series (power, state, targets) to its recorder for the metrics layer.

When a :class:`~repro.faults.injector.FaultInjector` is attached, the
manager runs a **degraded-mode fail-safe ladder** on top of Algorithm 1
(knobs in :class:`~repro.faults.degraded.DegradedModeConfig`):

* **meter outage** → the cycle runs on the Formula (1) estimated
  aggregate (§III.B) anchored to the last metered reading; threshold
  learning freezes and no node may be upgraded while estimating;
* **stale telemetry** → a node whose sample is older than the stale-age
  bound is never upgraded (neither by steady-green restore nor by a
  command that would raise its actual level), it simply waits in
  ``A_degraded`` for fresh data;
* **candidate-set blackout** → sustained sub-coverage telemetry forces
  the cycle to red: with the candidate set dark, the safe assumption is
  the worst one.

With no injector attached every rung is compiled out of the path and the
control cycle is bit-for-bit the paper's.

When a :class:`~repro.provision.runtime.ProvisionRuntime` is attached,
the manager additionally defends the *budget side* of Algorithm 1
against power-delivery faults (feed loss, PDU failure, breaker trips,
operator cap orders):

* **budget renegotiation** — each cycle the surviving delivery capacity
  is pushed into :meth:`ThresholdController.set_envelope`, shrinking
  ``P_L``/``P_H`` the instant capacity is lost (and un-clamping them on
  recovery) while threshold *learning* stays clamped to the envelope;
* **emergency red** — a cycle whose draw exceeds surviving capacity is
  forced straight to red, bypassing cadence and steady-green hysteresis;
* **per-branch capping** — racks near their (possibly derated) branch
  rating are degraded locally through the fenced actuator;
* **degradation ladder** — sustained over-capacity escalates through
  job suspension to node shedding, with gradual re-admission
  (:class:`~repro.provision.emergency.EmergencyResponse`).

With a healthy scenario attached, none of this fires and the control
cycle remains bit-for-bit the undefended one.

For controller crash-recovery (:mod:`repro.ha`) the manager can share a
caller-supplied actuator (in-flight commands live in the network, not in
the manager process), journal every completed cycle to a
:class:`~repro.ha.journal.StateJournal`, emit a full
:meth:`~PowerManager.checkpoint`, and rebuild itself from a journal via
:meth:`~PowerManager.restore_state`.  A restored manager re-enters
service under a **recovery hold**: it never upgrades any node until
every candidate has reported fresh telemetry since the restore — its
cached view of the machine is only trustworthy where it has been
re-confirmed.  When the manager holds a fencing epoch, every command
batch carries it and a deposed incarnation's batches (and journal
writes) are rejected wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.engine import ClusterEngine, canonical_power_sum, get_engine
from repro.core.actuator import ActuationReport, DvfsActuator
from repro.core.capping import CappingAction, CappingDecision, PowerCappingAlgorithm
from repro.core.policies.base import PolicyContext, SelectionPolicy
from repro.core.sets import NodeSets
from repro.core.states import PowerState, classify_power_state
from repro.core.thresholds import ThresholdController
from repro.errors import ConfigurationError, DegradedModeError
from repro.faults.degraded import DegradedModeConfig
from repro.faults.injector import FaultInjector, FaultStats
from repro.ha.journal import (
    ControllerCheckpoint,
    CycleRecord,
    JournalRecovery,
    StateJournal,
)
from repro.obs.facade import Observability, resolve_obs
from repro.obs.trace import CycleTracer, Span
from repro.power.estimator import NodePowerEstimator
from repro.power.hetero import make_power_model
from repro.power.meter import SystemPowerMeter
from repro.provision.emergency import EmergencyResponse
from repro.provision.runtime import ProvisionRuntime, ProvisionStats
from repro.telemetry.collector import TelemetryCollector, TelemetrySnapshot
from repro.telemetry.cost import ManagementCostModel
from repro.telemetry.integrity import (
    IntegrityConfig,
    MeterIntegrityMonitor,
    TelemetryValidator,
    screen_metered_power,
)
from repro.telemetry.recorder import TimeSeriesRecorder
from repro.types import Seconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduler.scheduler import BatchScheduler

__all__ = ["PowerManager", "CycleReport"]

#: Standard recorder series names written by the manager.
SERIES_POWER = "power_w"
SERIES_STATE = "state_severity"
SERIES_TARGETS = "targets"
SERIES_P_LOW = "p_low_w"
SERIES_P_HIGH = "p_high_w"
#: Degraded-mode series, recorded only when a fault injector is attached
#: (so fault-free runs keep the exact seed recorder content).
SERIES_COVERAGE = "telemetry_coverage"
SERIES_DEGRADED = "degraded_sensing"
#: Telemetry-integrity series, recorded only when the integrity defense
#: is configured (so fault-only and fault-free runs are untouched).
SERIES_QUARANTINED = "quarantined_nodes"
SERIES_TRUST_MIN = "trust_min"
SERIES_METER_DISTRUSTED = "meter_distrusted"
#: Power-delivery series, recorded only when a provision runtime is
#: attached (fault-free and fault-only runs keep the seed content).
SERIES_CAPACITY = "capacity_w"
SERIES_BRANCH_OVER = "branch_over_w"


@dataclass(frozen=True)
class CycleReport:
    """What one control cycle saw and did."""

    time: float
    power_w: float
    state: PowerState
    decision: CappingDecision
    p_low: float
    p_high: float
    #: Whether the power value came from the meter (False = Formula (1)
    #: fallback estimate during a meter outage).
    metered: bool = True
    #: Fraction of candidate agents that reported fresh data.
    coverage: float = 1.0
    #: Whether the blackout rung forced this cycle to red.
    forced_red: bool = False
    #: Outcome of this cycle's DVFS command batch.
    actuation: ActuationReport | None = None
    #: Nodes under telemetry-integrity quarantine this cycle.
    quarantined_nodes: int = 0
    #: Whether the integrity monitor distrusted the meter this cycle.
    meter_distrusted: bool = False
    #: Surviving delivery capacity this cycle, watts (None = no
    #: provision runtime attached).
    capacity_w: float | None = None
    #: Whether the capacity-emergency path forced this cycle to red.
    emergency_red: bool = False

    @property
    def acted(self) -> bool:
        """Whether any DVFS command was issued this cycle."""
        return self.decision.action is not CappingAction.NONE

    @property
    def degraded(self) -> bool:
        """Whether the cycle ran on degraded sensing."""
        return self.forced_red or not self.metered


class PowerManager:
    """The global power manager of the proposed architecture.

    Args:
        cluster: The machine under management.
        sets: Node classification (candidate set = monitored + throttled).
        meter: Whole-system power meter.
        thresholds: Threshold controller (learning or fixed).
        policy: Target-set selection policy for yellow cycles.
        steady_green_cycles: ``T_g`` for Algorithm 1 (paper: 10).
        cost_model: Management-cost accounting (Figure 5); optional.
        recorder: Series recorder; a fresh one is created if omitted.
        fault_injector: Optional fault injector; attaching one arms the
            degraded-mode fail-safe ladder.
        degraded: Ladder thresholds (defaults when omitted).
        actuator: Optional caller-owned actuator to share (the HA wiring
            passes the live one so in-flight commands survive a manager
            crash); a private one is created when omitted.
        journal: Optional state journal; when attached, every completed
            cycle appends a :class:`~repro.ha.journal.CycleRecord` and
            the journal is compacted with a fresh checkpoint on its
            cadence.
        obs: Observability facade (:mod:`repro.obs`).  When tracing is
            on the manager emits one span tree per control cycle; when
            metrics are on the cycle statistics are mirrored into the
            registry; when the flight recorder is armed the manager
            trips it on entry into the red state.  ``None`` (the
            default) resolves to the shared disabled facade and leaves
            the control cycle bit-for-bit unchanged.
        integrity: Telemetry-integrity knobs
            (:mod:`repro.telemetry.integrity`).  When given, the manager
            builds a per-node validation/trust/quarantine pipeline into
            its collector and a meter-residual monitor in front of
            classification, and freezes threshold learning whenever the
            meter is distrusted or any node is quarantined.  ``None``
            (the default) leaves the pipeline out entirely — the
            control cycle is bit-for-bit the undefended one.
        provision: Power-delivery runtime (:mod:`repro.provision`).
            When given, the manager drives its capacity events each
            cycle, renegotiates its budget against surviving capacity,
            runs the emergency-red / branch-capping / degradation-ladder
            defenses (if the scenario arms them), and settles true
            branch power into the breaker physics.  ``None`` (the
            default) leaves the whole domain out.
        scheduler: The batch scheduler, required for the ladder's
            suspend and shed rungs and for killing jobs on blacked-out
            racks; optional (without it the ladder stops at the DVFS
            floor).
        engine: Hot-path engine for estimation and telemetry sweeps
            (instance, registry name, or ``None`` to inherit the
            cluster's engine preference).
    """

    def __init__(
        self,
        cluster: Cluster,
        sets: NodeSets,
        meter: SystemPowerMeter,
        thresholds: ThresholdController,
        policy: SelectionPolicy,
        steady_green_cycles: int = 10,
        cost_model: ManagementCostModel | None = None,
        recorder: TimeSeriesRecorder | None = None,
        fault_injector: FaultInjector | None = None,
        degraded: DegradedModeConfig | None = None,
        actuator: DvfsActuator | None = None,
        journal: StateJournal | None = None,
        obs: Observability | None = None,
        integrity: IntegrityConfig | None = None,
        provision: ProvisionRuntime | None = None,
        scheduler: "BatchScheduler | None" = None,
        engine: ClusterEngine | str | None = None,
    ) -> None:
        self._cluster = cluster
        self._sets = sets
        self._meter = meter
        self._thresholds = thresholds
        self._policy = policy
        self._injector = fault_injector
        self._degraded_cfg = degraded if degraded is not None else DegradedModeConfig()
        self._cost_model = cost_model
        self._obs = resolve_obs(obs)
        self._engine = get_engine(
            engine if engine is not None else getattr(cluster, "engine", None)
        )
        self._estimator = NodePowerEstimator(
            make_power_model(cluster), engine=self._engine
        )
        self._validator: TelemetryValidator | None = None
        self._meter_monitor: MeterIntegrityMonitor | None = None
        if integrity is not None:
            self._validator = TelemetryValidator(
                integrity,
                self._estimator,
                sets.candidates,
                cluster.spec.top_level,
                obs=obs,
            )
            self._meter_monitor = MeterIntegrityMonitor(integrity, obs=obs)
        self._collector = TelemetryCollector(
            cluster.state,
            sets.candidates,
            cost_model,
            fault_injector,
            obs=obs,
            validator=self._validator,
            engine=self._engine,
        )
        self._capping = PowerCappingAlgorithm(
            sets, cluster.spec.top_level, steady_green_cycles
        )
        self._actuator = (
            actuator
            if actuator is not None
            else DvfsActuator(cluster.state, fault_injector, obs=obs)
        )
        self._journal = journal
        self.recorder = recorder if recorder is not None else TimeSeriesRecorder()
        self._cycles = 0
        self._state_counts = {s: 0 for s in PowerState}
        # Degraded-mode ladder state.
        self._upgradable: np.ndarray | None = None
        self._blackout_streak = 0
        self._forced_red_cycles = 0
        self._estimated_cycles = 0
        self._aux_fenced_batches = 0
        self._last_metered_power: float | None = None
        self._last_metered_snapshot: TelemetrySnapshot | None = None
        self._offset_w = 0.0
        self._offset_valid = False
        # Crash-recovery state (repro.ha).
        self._epoch: int | None = None
        self._recovery_pending: set[int] = set()
        self._last_cycle_time = 0.0
        # Observability: previous cycle's state, for the red-entry trip.
        self._last_state: PowerState | None = None
        self._last_power_w = 0.0
        # Power-delivery fault domain (repro.provision).
        self._provision = provision
        self._emergency: EmergencyResponse | None = None
        self._prov_last_settle: float | None = None
        if provision is not None:
            if provision.topology.num_nodes != cluster.state.num_nodes:
                raise ConfigurationError(
                    "provision topology does not match the cluster size"
                )
            cand_mask = np.zeros(cluster.state.num_nodes, dtype=bool)
            cand_mask[sets.candidates] = True
            self._emergency = EmergencyResponse(provision, scheduler, cand_mask)
        self._register_metrics()

    def _power_ratio_high(self) -> float:
        """Collected-gauge callback: last power over P_H (0 if unset)."""
        p_high = self._thresholds.thresholds.p_high
        return self._last_power_w / p_high if p_high > 0.0 else 0.0

    def _register_metrics(self) -> None:
        """Wire the cycle-level metric series (no-op instruments when off).

        Everything the manager already tracks — per-state cycle counts,
        last power, P/P_H — is exposed as collected (export-time) series
        at zero per-cycle cost; only the target-set histogram needs one
        inline ``observe()`` per cycle (a distribution cannot be
        reconstructed from a callback).
        """
        obs = self._obs
        reg = obs.metrics
        self._metrics_on = obs.metrics_on
        self._targets_hist = reg.histogram(
            "repro_targets_per_cycle",
            "Target-set size of each cycle's capping decision",
            buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )
        if not obs.metrics_on:
            return
        for state in PowerState:
            reg.counter_func(
                "repro_cycles_total",
                "Control cycles by classified power state",
                (lambda s=state: float(self._state_counts[s])),
                labels={"state": state.value},
            )
        reg.gauge_func(
            "repro_system_power_watts",
            "Last observed system power, watts",
            lambda: self._last_power_w,
        )
        reg.gauge_func(
            "repro_power_ratio_high",
            "Last system power over the high threshold P/P_H",
            self._power_ratio_high,
        )
        reg.counter_func(
            "repro_forced_red_cycles_total",
            "Cycles the blackout rung forced to red",
            lambda: float(self._forced_red_cycles),
        )
        reg.counter_func(
            "repro_estimated_power_cycles_total",
            "Cycles run on the Formula (1) fallback estimate",
            lambda: float(self._estimated_cycles),
        )
        reg.counter_func(
            "repro_aux_fenced_batches_total",
            "Out-of-band actuation batches rejected by epoch fencing",
            lambda: float(self._aux_fenced_batches),
        )
        reg.gauge_func(
            "repro_time_in_green",
            "Algorithm 1 steady-green counter Time_g",
            lambda: float(self._capping.time_in_green),
        )
        reg.gauge_func(
            "repro_degraded_nodes",
            "Size of A_degraded (nodes currently capped)",
            lambda: float(len(self._capping.degraded_nodes)),
        )
        reg.gauge_func(
            "repro_recovery_pending_nodes",
            "Candidates awaiting fresh telemetry under the recovery hold",
            lambda: float(len(self._recovery_pending)),
        )
        if self._provision is not None:
            prov = self._provision
            reg.counter_func(
                "repro_breaker_trips_total",
                "Branch breakers tripped (racks blacked out)",
                lambda: float(prov.breaker_trips),
            )
            reg.counter_func(
                "repro_capacity_lost_watt_seconds_total",
                "Integrated (design - surviving) delivery capacity, W*s",
                lambda: prov.capacity_lost_w_seconds,
            )
            reg.counter_func(
                "repro_branch_cap_violation_seconds_total",
                "Seconds any branch drew above its deliverable limit",
                lambda: prov.branch_cap_violation_seconds,
            )
            reg.gauge_func(
                "repro_delivery_capacity_watts",
                "Surviving delivery capacity, watts",
                lambda: prov.capacity_w,
            )
        if self._emergency is not None:
            emr = self._emergency
            reg.counter_func(
                "repro_emergency_red_cycles_total",
                "Cycles forced red by the capacity emergency path",
                lambda: float(emr.emergency_red_cycles),
            )
            reg.counter_func(
                "repro_jobs_suspended_total",
                "Jobs suspended by the degradation ladder",
                lambda: float(emr.jobs_suspended),
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sets(self) -> NodeSets:
        """The node-set classification."""
        return self._sets

    @property
    def policy(self) -> SelectionPolicy:
        """The active target-selection policy."""
        return self._policy

    @property
    def thresholds(self) -> ThresholdController:
        """The threshold controller."""
        return self._thresholds

    @property
    def collector(self) -> TelemetryCollector:
        """The candidate-set telemetry collector."""
        return self._collector

    @property
    def actuator(self) -> DvfsActuator:
        """The DVFS actuator (actuation statistics)."""
        return self._actuator

    @property
    def capping(self) -> PowerCappingAlgorithm:
        """The Algorithm 1 instance (``A_degraded``, ``Time_g``)."""
        return self._capping

    @property
    def cycles(self) -> int:
        """Control cycles run so far."""
        return self._cycles

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The attached fault injector (None when fault-free)."""
        return self._injector

    @property
    def validator(self) -> TelemetryValidator | None:
        """The telemetry-integrity validator (None when undefended)."""
        return self._validator

    @property
    def meter_monitor(self) -> MeterIntegrityMonitor | None:
        """The meter-integrity monitor (None when undefended)."""
        return self._meter_monitor

    @property
    def journal(self) -> StateJournal | None:
        """The attached state journal (None when not journaling)."""
        return self._journal

    @property
    def provision(self) -> ProvisionRuntime | None:
        """The attached power-delivery runtime (None when absent)."""
        return self._provision

    @property
    def emergency(self) -> EmergencyResponse | None:
        """The capacity-emergency response (None without provision)."""
        return self._emergency

    @property
    def fencing_epoch(self) -> int | None:
        """The epoch this incarnation's commands carry (None = unfenced)."""
        return self._epoch

    @property
    def deposed(self) -> bool:
        """Whether a successor's takeover has fenced this incarnation out."""
        return self._epoch is not None and self._epoch != self._actuator.epoch

    @property
    def in_recovery_hold(self) -> bool:
        """Whether the post-restore no-upgrade hold is still active."""
        return bool(self._recovery_pending)

    @property
    def recovery_pending_nodes(self) -> int:
        """Candidates not yet freshly re-observed since the restore."""
        return len(self._recovery_pending)

    def set_fencing_epoch(self, epoch: int) -> None:
        """Adopt the fencing epoch this incarnation's commands carry.

        Called by the HA layer at commissioning (primary) and takeover
        (successor).  The epoch is fixed for the incarnation's lifetime:
        when the actuator's epoch moves past it, this manager is deposed
        and every further batch it issues is fenced.
        """
        self._epoch = int(epoch)

    @property
    def forced_red_cycles(self) -> int:
        """Cycles the blackout rung forced to red."""
        return self._forced_red_cycles

    @property
    def estimated_power_cycles(self) -> int:
        """Cycles run on the Formula (1) fallback estimate."""
        return self._estimated_cycles

    @property
    def aux_fenced_batches(self) -> int:
        """Out-of-band actuation batches rejected by epoch fencing."""
        return self._aux_fenced_batches

    def state_count(self, state: PowerState) -> int:
        """Number of cycles classified as ``state``."""
        return self._state_counts[state]

    def ever_entered_red(self) -> bool:
        """Whether any cycle was classified red (§V.D checks this)."""
        return self._state_counts[PowerState.RED] > 0

    def fault_report(self) -> FaultStats | None:
        """Aggregate fault accounting for the run (None when fault-free)."""
        inj = self._injector
        if inj is None:
            return None
        act = self._actuator
        val = self._validator
        mon = self._meter_monitor
        return FaultStats(
            dropped_samples=self._collector.dropped_samples,
            meter_outages=inj.meter_outages,
            meter_outage_cycles=inj.meter_outage_cycles,
            node_crashes=inj.node_crashes,
            offline_node_cycles=inj.offline_node_cycles,
            commands_lost=act.lost_commands,
            commands_retried=act.retried_commands,
            commands_abandoned=act.abandoned_commands,
            forced_red_cycles=self._forced_red_cycles,
            estimated_power_cycles=self._estimated_cycles,
            corrupted_samples=inj.corrupted_samples,
            corrupted_meter_readings=inj.corrupted_meter_readings,
            corrupt_samples_rejected=0 if val is None else val.rejected_samples,
            quarantine_entries=0 if val is None else val.quarantine_entries,
            quarantined_node_cycles=(
                0 if val is None else val.quarantined_node_cycles
            ),
            meter_distrusted_cycles=0 if mon is None else mon.distrusted_cycles,
            meter_clamped_readings=self._meter.clamped_readings,
        )

    def provision_report(self) -> ProvisionStats | None:
        """Aggregate power-delivery accounting (None when no runtime).

        Delivery-side counters come from the runtime; the emergency
        response's ladder counters are folded in here because the
        manager owns the response object.
        """
        prov = self._provision
        if prov is None:
            return None
        stats = prov.stats()
        emr = self._emergency
        if emr is None:
            return stats
        return replace(
            stats,
            emergency_red_cycles=emr.emergency_red_cycles,
            envelope_renegotiations=emr.envelope_renegotiations,
            branch_cap_interventions=emr.branch_cap_interventions,
            jobs_suspended=emr.jobs_suspended,
            jobs_resumed=emr.jobs_resumed,
            jobs_killed=emr.jobs_killed,
            nodes_shed=emr.nodes_shed,
            nodes_readmitted=emr.nodes_readmitted,
        )

    # ------------------------------------------------------------------
    # The control cycle
    # ------------------------------------------------------------------
    def control_cycle(self, now: Seconds) -> CycleReport:
        """Sense → classify → decide → actuate, and record the series.

        When tracing is on, each cycle emits one span tree (``cycle`` →
        ``collect`` / ``estimate`` / ``classify`` / ``select_targets``
        / ``actuate`` / ``journal``); an exception unwinding mid-cycle
        aborts the open tree so the tracer stays usable.
        """
        tracer = self._obs.tracer
        root = tracer.begin_cycle(now)
        try:
            report = self._traced_cycle(now, tracer, root)
        except BaseException:
            tracer.abort_cycle()
            raise
        tracer.end_cycle()
        if report.state is PowerState.RED and self._last_state is not PowerState.RED:
            # Trip after end_cycle so the dump includes the red cycle.
            self._obs.trip("red_state_entry", now)
        self._last_state = report.state
        return report

    def _traced_cycle(
        self, now: Seconds, tracer: CycleTracer, root: Span
    ) -> CycleReport:
        tracing = tracer.enabled
        inj = self._injector
        if inj is not None:
            inj.begin_cycle(now)
        prov = self._provision
        emr = self._emergency
        if prov is not None:
            prov.begin_cycle(now)
            if emr is not None and emr.defended:
                # Budget renegotiation: thresholds (and any later
                # learning) are clamped to the surviving capacity's
                # envelope the moment delivery changes, both downward on
                # a loss and back up on recovery.
                if self._thresholds.set_envelope(emr.envelope_w()):
                    emr.envelope_renegotiations += 1

        # Stages open/close spans directly (no ``with`` dispatch) under a
        # single ``tracing`` guard; an exception unwinding mid-stage is
        # cleaned up by ``abort_cycle`` in the caller's handler.
        if tracing:
            sp = tracer.open_span("collect")
        snapshot = self._collector.collect(now)
        if self._recovery_pending:
            # Recovery hold: tick off candidates that have reported
            # fresh since the restore (age 0 = sampled this sweep; age
            # is non-negative, so <= avoids exact float equality).
            fresh_ids = snapshot.node_ids[np.asarray(snapshot.age) <= 0.0]
            self._recovery_pending.difference_update(
                int(i) for i in fresh_ids
            )
        metered = inj is None or inj.meter_available()
        if inj is not None:
            # Nodes eligible for an actual level raise this cycle:
            # fresh telemetry, and only on a real meter reading.
            allow = np.ones(self._cluster.state.num_nodes, dtype=bool)
            if metered:
                stale = snapshot.stale_mask(self._degraded_cfg.max_stale_age_s)
                allow[snapshot.node_ids[stale]] = False
            else:
                allow[:] = False
        else:
            allow = None
        if self._recovery_pending:
            # A restored manager upgrades nothing until every candidate
            # has been re-observed: its inherited view of the machine is
            # only trustworthy where it has been re-confirmed.
            if allow is None:
                allow = np.zeros(self._cluster.state.num_nodes, dtype=bool)
            else:
                allow[:] = False
        self._upgradable = allow
        # Flush in-flight commands after the sweep so late-landing
        # raises are clamped against this cycle's staleness; their
        # effect shows in the next sweep.
        self._actuator.begin_cycle(raise_ok=self._upgradable)
        if tracing:
            sp.attrs = {
                "size": snapshot.size,
                "coverage": snapshot.coverage,
                "recovery_pending": len(self._recovery_pending),
            }
            tracer.close_span()

        quarantine_active = (
            self._validator is not None and self._validator.any_quarantined
        )
        meter_distrusted = False
        if tracing:
            sp = tracer.open_span("estimate")
        if metered:
            raw_power = self._meter.read()
            if inj is not None:
                raw_power = inj.perturb_meter(raw_power)
            # All raw meter readings pass the integrity layer's single
            # trusted egress before they may drive learning or control
            # (the cross-check uses the *raw* Formula (1) candidate sum
            # — the outage anchor would launder a byzantine meter's
            # error into the reference).
            screened = screen_metered_power(
                self._meter_monitor,
                raw_power,
                lambda: self._candidate_estimate_w(snapshot),
                quarantine_active,
                now,
            )
            power = screened.power_w
            meter_distrusted = screened.meter_distrusted
            if screened.learnable:
                # P_peak observations taken from a distrusted meter or a
                # quarantine-inflated estimate would poison the learned
                # thresholds for every later cycle.
                self._thresholds.observe(power)
            self._last_metered_power = power
            self._last_metered_snapshot = snapshot
            self._offset_valid = False
        else:
            power = self._estimate_system_power(snapshot)
            self._estimated_cycles += 1
        if tracing:
            sp.attrs = {"metered": metered, "power_w": power}
            if self._meter_monitor is not None:
                sp.attrs["meter_distrusted"] = meter_distrusted
            tracer.close_span()

        if tracing:
            sp = tracer.open_span("classify")
        th = self._thresholds.thresholds
        state = classify_power_state(power, th.p_low, th.p_high)
        forced_red = False
        if inj is not None:
            cfg = self._degraded_cfg
            if snapshot.coverage < cfg.blackout_coverage:
                self._blackout_streak += 1
            else:
                self._blackout_streak = 0
            if (
                self._blackout_streak >= cfg.blackout_cycles
                and state is not PowerState.RED
            ):
                state = PowerState.RED
                forced_red = True
                self._forced_red_cycles += 1
        emergency_red = False
        if emr is not None and emr.update(now, power):
            # Capacity emergency: draw exceeds surviving delivery
            # capacity.  Red, now — cadence and steady-green hysteresis
            # are for budget *management*, not for physics.
            emergency_red = True
            state = PowerState.RED
        if tracing:
            sp.attrs = {
                "state": state.value,
                "p_low_w": th.p_low,
                "p_high_w": th.p_high,
                "forced_red": forced_red,
            }
            if prov is not None:
                sp.attrs["emergency_red"] = emergency_red
            tracer.close_span()

        if tracing:
            sp = tracer.open_span("select_targets")
        ctx = PolicyContext(
            snapshot=snapshot,
            previous=self._collector.previous,
            estimator=self._estimator,
            system_power=power,
            thresholds=th,
        )
        decision = self._decide(state, ctx)
        if tracing:
            sp.attrs = {
                "action": decision.action.value,
                "targets": decision.num_targets,
                "time_in_green": decision.time_in_green,
            }
            tracer.close_span()

        if tracing:
            sp = tracer.open_span("actuate")
        actuation = self._actuator.apply(
            decision, raise_ok=self._upgradable, epoch=self._epoch
        )
        if tracing:
            sp.attrs = {
                "commands": actuation.commands,
                "effective": actuation.effective,
                "noop": actuation.noop,
                "suppressed": actuation.suppressed,
                "lost": actuation.lost,
                "delayed": actuation.delayed,
                "fenced": actuation.fenced,
            }
            tracer.close_span()

        if prov is not None:
            self._provision_settle(prov, emr, now, state, decision)

        self._cycles += 1
        self._state_counts[state] += 1
        self._last_cycle_time = now
        rec = self.recorder
        rec.record(SERIES_POWER, now, power)
        rec.record(SERIES_STATE, now, state.severity)
        rec.record(SERIES_TARGETS, now, decision.num_targets)
        rec.record(SERIES_P_LOW, now, th.p_low)
        rec.record(SERIES_P_HIGH, now, th.p_high)
        if inj is not None:
            rec.record(SERIES_COVERAGE, now, snapshot.coverage)
            rec.record(
                SERIES_DEGRADED, now, 1.0 if (forced_red or not metered) else 0.0
            )
        quarantined_count = 0
        if self._validator is not None:
            quarantined_count = int(self._validator.quarantined.sum())
            trust = self._validator.trust
            rec.record(SERIES_QUARANTINED, now, float(quarantined_count))
            rec.record(
                SERIES_TRUST_MIN, now, float(trust.min()) if len(trust) else 1.0
            )
            rec.record(
                SERIES_METER_DISTRUSTED, now, 1.0 if meter_distrusted else 0.0
            )
        if prov is not None:
            rec.record(SERIES_CAPACITY, now, prov.capacity_w)
            rec.record(SERIES_BRANCH_OVER, now, prov.last_branch_over_w)

        if tracing:
            sp = tracer.open_span("journal")
        # Journal the completed cycle — unless this incarnation has
        # been deposed: fencing guards the log exactly like the
        # actuator, so a zombie primary cannot interleave its
        # timeline into the successor's journal.
        journaled = self._journal is not None and not self.deposed
        compacted = False
        if self._journal is not None and journaled:
            self._journal.append(
                CycleRecord(
                    cycle=self._cycles,
                    time=now,
                    power_w=power,
                    metered=metered,
                    state=state.value,
                    forced_red=forced_red,
                    action=decision.action.value,
                    node_ids=tuple(int(i) for i in decision.node_ids),
                    new_levels=tuple(int(l) for l in decision.new_levels),
                    time_in_green=decision.time_in_green,
                    coverage=snapshot.coverage,
                    blackout_streak=self._blackout_streak,
                    snapshot=snapshot,
                    actuator=self._actuator.state_dict(),
                )
            )
            if self._journal.should_compact():
                self._journal.compact(self.checkpoint())
                compacted = True
        if tracing:
            sp.attrs = {"journaled": journaled, "compacted": compacted}
            tracer.close_span()

        if self._metrics_on:
            self._last_power_w = power
            self._targets_hist.observe(float(decision.num_targets))
        if tracing:
            root.attrs = {
                "cycle": self._cycles,
                "power_w": power,
                "ratio_high": (power / th.p_high) if th.p_high > 0.0 else None,
                "state": state.value,
                "metered": metered,
                "coverage": snapshot.coverage,
                "forced_red": forced_red,
                "degraded": forced_red or not metered,
                "action": decision.action.value,
                "targets": decision.num_targets,
                "epoch": self._epoch,
                "recovery_hold": bool(self._recovery_pending),
            }
            if self._validator is not None:
                root.attrs["quarantined_nodes"] = quarantined_count
            if prov is not None:
                root.attrs["capacity_w"] = prov.capacity_w
                root.attrs["emergency_red"] = emergency_red
        return CycleReport(
            time=now,
            power_w=power,
            state=state,
            decision=decision,
            p_low=th.p_low,
            p_high=th.p_high,
            metered=metered,
            coverage=snapshot.coverage,
            forced_red=forced_red,
            actuation=actuation,
            quarantined_nodes=quarantined_count,
            meter_distrusted=meter_distrusted,
            capacity_w=None if prov is None else prov.capacity_w,
            emergency_red=emergency_red,
        )

    def _true_node_power_w(self) -> np.ndarray:
        """Per-node true power from the full live cluster state, watts.

        The estimator wraps the same model the meter integrates, so
        evaluating it over the *actual* state arrays (not the telemetry
        snapshot, which may be stale, partial or corrupted) is the
        ground-truth branch power the breakers experience.
        """
        st = self._cluster.state
        return self._estimator.estimate_nodes(
            st.level,
            st.cpu_util,
            st.mem_frac,
            st.nic_frac,
            node_ids=np.arange(st.num_nodes, dtype=np.int64),
        )

    def _note_aux_actuation(self, fenced: bool) -> None:
        """Status check for out-of-band actuation (RL502).

        Branch caps, blackout releases and the end-of-run restore all
        bypass the main per-cycle actuation span, so their outcome must
        be accounted here: a fully fenced batch means a successor owns
        the machine, and this incarnation's telemetry records the
        refusal instead of silently pretending the command landed.
        """
        if fenced:
            self._aux_fenced_batches += 1

    def _provision_settle(
        self,
        prov: ProvisionRuntime,
        emr: EmergencyResponse | None,
        now: Seconds,
        state: PowerState,
        decision: CappingDecision,
    ) -> None:
        """The delivery-side tail of one cycle: branch caps + physics.

        After the global decision has been actuated, (1) per-branch
        capping degrades candidates on racks near their deliverable
        limit (through the fenced actuator, recorded in ``A_degraded``
        so steady-green restores them later), (2) the cycle's true
        branch power is settled into the breaker thermal model, and
        (3) any breaker that tripped blacks out its rack: jobs killed,
        nodes fenced offline and forced idle.
        """
        node_power = self._true_node_power_w()
        if emr is not None and emr.branch_caps_on:
            ids, new_levels = emr.branch_targets(
                self._cluster.state.level, node_power
            )
            if len(ids) > 0:
                self._capping.mark_degraded(ids)
                branch_decision = CappingDecision(
                    state,
                    CappingAction.DEGRADE,
                    ids,
                    new_levels,
                    decision.time_in_green,
                )
                branch_report = self._actuator.apply(
                    branch_decision,
                    raise_ok=self._upgradable,
                    epoch=self._epoch,
                )
                self._note_aux_actuation(
                    branch_report.fenced == branch_report.commands
                )
                # Branch capping changed levels inside this interval;
                # settle the physics against the post-cap draw.
                node_power = self._true_node_power_w()
        dt = (
            0.0
            if self._prov_last_settle is None
            else float(now) - self._prov_last_settle
        )
        self._prov_last_settle = float(now)
        tripped = prov.settle(now, dt, node_power)
        if len(tripped) > 0 and emr is not None:
            dark = emr.handle_trips(tripped, now)
            if len(dark) > 0:
                # A dark rack draws nothing: force its nodes to the
                # floor through the fenced release path (RL301 — a
                # blackout is still actuation, never a raw level write).
                written = self._actuator.release(dark, 0, epoch=self._epoch)
                self._note_aux_actuation(written == 0)

    def _estimate_system_power(self, snapshot: TelemetrySnapshot) -> float:
        """Formula (1) fallback for total power during a meter outage.

        The candidate set's estimated aggregate tracks the part of the
        system the manager can observe; the remainder (privileged and
        unmonitored nodes) is carried as a constant offset anchored at
        the last metered cycle::

            P ≈ Σ_candidates P_formula1(now) + (P_metered − Σ P_formula1)|_last

        The offset is computed once per outage burst and reused until
        the meter returns.

        Raises:
            DegradedModeError: if there is neither telemetry nor any
                previously metered reading to anchor an estimate.
        """
        if snapshot.size == 0 and self._last_metered_power is None:
            raise DegradedModeError(
                "meter outage with no telemetry and no prior metered "
                "reading: the fail-safe ladder has no estimation basis"
            )
        est = self._candidate_estimate_w(snapshot)
        if not self._offset_valid:
            last = self._last_metered_snapshot
            if self._last_metered_power is not None and last is not None:
                self._offset_w = self._last_metered_power - self._candidate_estimate_w(
                    last
                )
            else:
                self._offset_w = 0.0
            self._offset_valid = True
        return max(0.0, est + self._offset_w)

    def _candidate_estimate_w(self, snapshot: TelemetrySnapshot) -> float:
        """Σ over monitored nodes of the Formula (1) estimate, watts.

        Accumulated in the canonical ascending-node-id order so the sum
        is bit-identical on either engine and under any candidate
        permutation.
        """
        if snapshot.size == 0:
            return 0.0
        estimates = self._estimator.estimate_nodes(
            snapshot.level,
            snapshot.cpu_util,
            snapshot.mem_frac,
            snapshot.nic_frac,
            node_ids=snapshot.node_ids,
        )
        return canonical_power_sum(estimates, snapshot.node_ids)

    def _decide(self, state: PowerState, ctx: PolicyContext) -> CappingDecision:
        """The decision step of one cycle.

        The default implementation is the paper's Algorithm 1 driven by
        the configured target-selection policy; baseline controllers
        (:mod:`repro.core.baselines`) override this single method and
        inherit all sensing, actuation and reporting machinery —
        including the degraded-mode ladder, whose raise clamp is applied
        at the actuator regardless of how the decision was made.
        """
        return self._capping.decide(
            state, ctx, self._policy, upgradable=self._upgradable
        )

    def reset_episode_state(self) -> None:
        """Clear cross-cycle control state for a new run.

        Resets Algorithm 1 (``A_degraded``, ``Time_g``), the policy, and
        the degraded-mode ladder's latches (blackout streak, estimation
        anchor, upgradable mask) so a reused manager starts the next
        episode with the same control posture as a fresh one.  Lifetime
        *counters* (cycles, state counts, forced-red totals) and the
        recovery hold are deliberately kept: the former are accounting,
        and the hold reflects sensing history a new episode does not
        erase.
        """
        self._capping.reset()
        self._policy.reset()
        self._blackout_streak = 0
        self._upgradable = None
        self._offset_w = 0.0
        self._offset_valid = False

    def release_all(self) -> None:
        """Restore every candidate node to the top level (end of run).

        Also clears ``A_degraded``/``Time_g`` and the blackout latch so
        the control state agrees with the machine it just released —
        no node is degraded, so no degraded bookkeeping may survive.
        """
        candidates = self._sets.candidates
        if len(candidates) == 0:
            return
        # Through the actuator's fenced release path, never a direct
        # state write: a deposed manager must not touch the machine
        # even to "clean up" (RL301).
        written = self._actuator.release(
            candidates, self._cluster.spec.top_level, epoch=self._epoch
        )
        self._note_aux_actuation(written == 0)
        self._capping.reset()
        self._blackout_streak = 0
        self._upgradable = None

    # ------------------------------------------------------------------
    # Crash recovery (repro.ha)
    # ------------------------------------------------------------------
    def checkpoint(self) -> ControllerCheckpoint:
        """Fold the manager's full resumable state into one checkpoint.

        Everything Algorithm 1 and the degraded-mode ladder need to
        continue from this exact cycle; see
        :class:`~repro.ha.journal.ControllerCheckpoint` for the record
        layout and :meth:`restore_state` for the inverse.
        """
        n = self._cluster.state.num_nodes
        mask = np.zeros(n, dtype=bool)
        mask[self._capping.degraded_nodes] = True
        return ControllerCheckpoint(
            cycle=self._cycles,
            time=self._last_cycle_time,
            thresholds=self._thresholds.state_dict(),
            degraded_mask=tuple(bool(b) for b in mask),
            time_in_green=self._capping.time_in_green,
            state_counts={s.value: c for s, c in self._state_counts.items()},
            forced_red_cycles=self._forced_red_cycles,
            estimated_cycles=self._estimated_cycles,
            blackout_streak=self._blackout_streak,
            snapshot=self._collector.current,
            collections=self._collector.collections,
            dropped_samples=self._collector.dropped_samples,
            accumulated_cost_s=self._collector.accumulated_cost_s,
            last_metered_power=self._last_metered_power,
            last_metered_snapshot=self._last_metered_snapshot,
            actuator=self._actuator.state_dict(),
        )

    def restore_state(
        self, recovery: JournalRecovery, restore_actuator: bool = False
    ) -> None:
        """Rebuild this (freshly constructed) manager from a journal.

        The checkpoint is adopted wholesale, then each subsequent record
        is folded on: metered powers replay through threshold learning
        (bit-identical, since learning is a pure function of the reading
        sequence), the journaled *decisions* replay onto ``A_degraded``
        — policies are never re-run, so stochastic policies consume no
        RNG during recovery — and the final record's snapshot rebuilds
        the collector's last-known-good cache.  With no checkpoint the
        fold starts from this manager's pristine state, which is why the
        HA factory must construct successors with the same initial
        configuration (thresholds, margins, ``T_g``) as the primary.

        After the restore the recovery hold is armed: no node is
        upgraded until every candidate has reported fresh telemetry.

        Args:
            recovery: What :meth:`StateJournal.recover` returned.
            restore_actuator: Also overwrite the actuator's queue and
                counters from the journal (cold restore onto a fresh
                actuator).  The default leaves the actuator alone — the
                warm HA wiring shares the live actuator, whose in-flight
                queue is the network's truth, not the journal's.
        """
        cp = recovery.checkpoint
        n = self._cluster.state.num_nodes
        if cp is not None:
            self._thresholds.restore_state(cp.thresholds)
            self._state_counts = {
                s: int(cp.state_counts.get(s.value, 0)) for s in PowerState
            }
            self._forced_red_cycles = int(cp.forced_red_cycles)
            self._estimated_cycles = int(cp.estimated_cycles)
            self._blackout_streak = int(cp.blackout_streak)
            self._last_metered_power = cp.last_metered_power
            self._last_metered_snapshot = cp.last_metered_snapshot
            mask = np.asarray(cp.degraded_mask, dtype=bool)
            time_g = int(cp.time_in_green)
        else:
            mask = np.zeros(n, dtype=bool)
            mask[self._capping.degraded_nodes] = True
            time_g = self._capping.time_in_green

        top = self._cluster.spec.top_level
        for r in recovery.records:
            if r.metered:
                self._thresholds.observe(r.power_w)
                self._last_metered_power = r.power_w
                self._last_metered_snapshot = r.snapshot
            else:
                self._estimated_cycles += 1
            self._state_counts[PowerState(r.state)] += 1
            if r.forced_red:
                self._forced_red_cycles += 1
            self._blackout_streak = int(r.blackout_streak)
            action = CappingAction(r.action)
            if action is CappingAction.DEGRADE:
                mask[list(r.node_ids)] = True
            elif action is CappingAction.UPGRADE:
                for i, level in zip(r.node_ids, r.new_levels):
                    if level >= top:
                        mask[i] = False
            elif action is CappingAction.EMERGENCY:
                mask[:] = False
                mask[list(r.node_ids)] = True
            time_g = int(r.time_in_green)
        self._capping.restore(mask, time_g)

        # Collector: the newest journaled sweep is the cache.
        records = recovery.records
        snapshot = records[-1].snapshot if records else (
            cp.snapshot if cp is not None else None
        )
        base_collections = cp.collections if cp is not None else 0
        base_dropped = cp.dropped_samples if cp is not None else 0
        base_cost = cp.accumulated_cost_s if cp is not None else 0.0
        folded_dropped = sum(
            int(np.count_nonzero(np.asarray(r.snapshot.age) > 0.0))
            for r in records
        )
        folded_cost = 0.0
        if self._cost_model is not None and records:
            folded_cost = len(records) * float(
                self._cost_model.cycle_cost_s(self._collector.size)
            )
        self._collector.restore_state(
            snapshot,
            collections=base_collections + len(records),
            dropped_samples=base_dropped + folded_dropped,
            accumulated_cost_s=base_cost + folded_cost,
        )

        if restore_actuator:
            act_state = records[-1].actuator if records else (
                cp.actuator if cp is not None else None
            )
            if act_state is not None:
                self._actuator.restore_state(act_state)

        self._cycles = recovery.last_cycle
        self._last_cycle_time = (
            records[-1].time if records else (cp.time if cp is not None else 0.0)
        )
        self._offset_w = 0.0
        self._offset_valid = False
        self._upgradable = None
        self._recovery_pending = set(int(i) for i in self._sets.candidates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PowerManager policy={self._policy.name!r} "
            f"candidates={self._sets.size} cycles={self._cycles}>"
        )
