"""The assembled power manager: one object, one control cycle.

:class:`PowerManager` wires together everything the architecture diagram
(Figure 1) shows around the global power manager: the system power meter,
the candidate set's telemetry collector, the Formula (1) estimator, the
threshold controller, Algorithm 1, a target-selection policy and the DVFS
actuator.  The experiment harness calls :meth:`PowerManager.control_cycle`
once per control period (normally equal to the sampling interval τ) and
gets back a :class:`CycleReport`; the manager also appends the standard
series (power, state, targets) to its recorder for the metrics layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.core.actuator import DvfsActuator
from repro.core.capping import CappingAction, CappingDecision, PowerCappingAlgorithm
from repro.core.policies.base import PolicyContext, SelectionPolicy
from repro.core.sets import NodeSets
from repro.core.states import PowerState, classify_power_state
from repro.core.thresholds import ThresholdController
from repro.power.estimator import NodePowerEstimator
from repro.power.hetero import make_power_model
from repro.power.meter import SystemPowerMeter
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.cost import ManagementCostModel
from repro.telemetry.recorder import TimeSeriesRecorder

__all__ = ["PowerManager", "CycleReport"]

#: Standard recorder series names written by the manager.
SERIES_POWER = "power_w"
SERIES_STATE = "state_severity"
SERIES_TARGETS = "targets"
SERIES_P_LOW = "p_low_w"
SERIES_P_HIGH = "p_high_w"


@dataclass(frozen=True)
class CycleReport:
    """What one control cycle saw and did."""

    time: float
    power_w: float
    state: PowerState
    decision: CappingDecision
    p_low: float
    p_high: float

    @property
    def acted(self) -> bool:
        """Whether any DVFS command was issued this cycle."""
        return self.decision.action is not CappingAction.NONE


class PowerManager:
    """The global power manager of the proposed architecture.

    Args:
        cluster: The machine under management.
        sets: Node classification (candidate set = monitored + throttled).
        meter: Whole-system power meter.
        thresholds: Threshold controller (learning or fixed).
        policy: Target-set selection policy for yellow cycles.
        steady_green_cycles: ``T_g`` for Algorithm 1 (paper: 10).
        cost_model: Management-cost accounting (Figure 5); optional.
        recorder: Series recorder; a fresh one is created if omitted.
    """

    def __init__(
        self,
        cluster: Cluster,
        sets: NodeSets,
        meter: SystemPowerMeter,
        thresholds: ThresholdController,
        policy: SelectionPolicy,
        steady_green_cycles: int = 10,
        cost_model: ManagementCostModel | None = None,
        recorder: TimeSeriesRecorder | None = None,
    ) -> None:
        self._cluster = cluster
        self._sets = sets
        self._meter = meter
        self._thresholds = thresholds
        self._policy = policy
        self._collector = TelemetryCollector(
            cluster.state, sets.candidates, cost_model
        )
        self._estimator = NodePowerEstimator(make_power_model(cluster))
        self._capping = PowerCappingAlgorithm(
            sets, cluster.spec.top_level, steady_green_cycles
        )
        self._actuator = DvfsActuator(cluster.state)
        self.recorder = recorder if recorder is not None else TimeSeriesRecorder()
        self._cycles = 0
        self._state_counts = {s: 0 for s in PowerState}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sets(self) -> NodeSets:
        """The node-set classification."""
        return self._sets

    @property
    def policy(self) -> SelectionPolicy:
        """The active target-selection policy."""
        return self._policy

    @property
    def thresholds(self) -> ThresholdController:
        """The threshold controller."""
        return self._thresholds

    @property
    def collector(self) -> TelemetryCollector:
        """The candidate-set telemetry collector."""
        return self._collector

    @property
    def actuator(self) -> DvfsActuator:
        """The DVFS actuator (actuation statistics)."""
        return self._actuator

    @property
    def capping(self) -> PowerCappingAlgorithm:
        """The Algorithm 1 instance (``A_degraded``, ``Time_g``)."""
        return self._capping

    @property
    def cycles(self) -> int:
        """Control cycles run so far."""
        return self._cycles

    def state_count(self, state: PowerState) -> int:
        """Number of cycles classified as ``state``."""
        return self._state_counts[state]

    def ever_entered_red(self) -> bool:
        """Whether any cycle was classified red (§V.D checks this)."""
        return self._state_counts[PowerState.RED] > 0

    # ------------------------------------------------------------------
    # The control cycle
    # ------------------------------------------------------------------
    def control_cycle(self, now: float) -> CycleReport:
        """Sense → classify → decide → actuate, and record the series."""
        power = self._meter.read()
        self._thresholds.observe(power)
        th = self._thresholds.thresholds
        state = classify_power_state(power, th.p_low, th.p_high)

        snapshot = self._collector.collect(now)
        ctx = PolicyContext(
            snapshot=snapshot,
            previous=self._collector.previous,
            estimator=self._estimator,
            system_power=power,
            thresholds=th,
        )
        decision = self._decide(state, ctx)
        self._actuator.apply(decision)

        self._cycles += 1
        self._state_counts[state] += 1
        rec = self.recorder
        rec.record(SERIES_POWER, now, power)
        rec.record(SERIES_STATE, now, state.severity)
        rec.record(SERIES_TARGETS, now, decision.num_targets)
        rec.record(SERIES_P_LOW, now, th.p_low)
        rec.record(SERIES_P_HIGH, now, th.p_high)
        return CycleReport(
            time=now,
            power_w=power,
            state=state,
            decision=decision,
            p_low=th.p_low,
            p_high=th.p_high,
        )

    def _decide(self, state: PowerState, ctx: PolicyContext) -> CappingDecision:
        """The decision step of one cycle.

        The default implementation is the paper's Algorithm 1 driven by
        the configured target-selection policy; baseline controllers
        (:mod:`repro.core.baselines`) override this single method and
        inherit all sensing, actuation and reporting machinery.
        """
        return self._capping.decide(state, ctx, self._policy)

    def reset_episode_state(self) -> None:
        """Clear Algorithm 1 and policy cross-cycle state (new run)."""
        self._capping.reset()
        self._policy.reset()

    def release_all(self) -> None:
        """Restore every candidate node to the top level (end of run)."""
        candidates = self._sets.candidates
        if len(candidates) == 0:
            return
        self._cluster.state.set_levels(
            candidates, self._cluster.spec.top_level
        )
        self._capping.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PowerManager policy={self._policy.name!r} "
            f"candidates={self._sets.size} cycles={self._cycles}>"
        )
