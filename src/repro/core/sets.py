"""Node-set classification: A_total, A_uncontrollable, A_candidate (§II.A).

The architecture's first idea is that not every node should be monitored
or throttled: privileged nodes (no DVFS facility, or running urgent /
SLA-critical work) are *uncontrollable*, and even among controllable nodes
only a subset — the *candidate set* — is worth the monitoring cost
(Figure 5's scalability argument).  :class:`NodeSets` captures the
classification; :class:`CandidateSelector` provides the strategies the
Figure 6 sweep uses to pick candidate sets of a given size.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError

__all__ = ["NodeSets", "CandidateSelector"]


class CandidateSelector(enum.Enum):
    """Strategy for choosing ``k`` candidate nodes out of the total set.

    * ``FIRST_K`` — the ``k`` lowest-numbered controllable nodes.  With a
      first-fit allocator these are the busiest nodes, so this matches
      deploying agents on the most load-bearing part of the machine.
    * ``SPREAD_K`` — every ``n/k``-th controllable node (even coverage).
    * ``RANDOM_K`` — a uniform sample (requires an rng).
    """

    FIRST_K = "first_k"
    SPREAD_K = "spread_k"
    RANDOM_K = "random_k"


class NodeSets:
    """The §II.A classification over one cluster.

    Args:
        cluster: The machine; its state's ``controllable`` flags define
            ``A_uncontrollable`` (flag False ⇒ privileged).
        candidate_ids: The monitored/throttleable candidate set; must be
            controllable nodes.  Defaults to *all* controllable nodes.
    """

    def __init__(
        self, cluster: Cluster, candidate_ids: np.ndarray | None = None
    ) -> None:
        self._cluster = cluster
        controllable = np.flatnonzero(cluster.state.controllable).astype(np.int64)
        if candidate_ids is None:
            ids = controllable
        else:
            ids = np.unique(np.asarray(candidate_ids, dtype=np.int64))
            if ids.size and (ids.min() < 0 or ids.max() >= cluster.num_nodes):
                raise ConfigurationError("candidate id out of range")
            if not np.all(cluster.state.controllable[ids]):
                bad = ids[~cluster.state.controllable[ids]]
                raise ConfigurationError(
                    f"candidate set contains privileged nodes: {bad.tolist()}"
                )
        self._candidates = ids.copy()
        self._candidates.setflags(write=False)
        self._candidate_mask = np.zeros(cluster.num_nodes, dtype=bool)
        self._candidate_mask[self._candidates] = True
        self._candidate_mask.setflags(write=False)

    # ------------------------------------------------------------------
    # The four sets
    # ------------------------------------------------------------------
    @property
    def total(self) -> np.ndarray:
        """``A_total``: every node consuming the power budget."""
        return np.arange(self._cluster.num_nodes, dtype=np.int64)

    @property
    def uncontrollable(self) -> np.ndarray:
        """``A_uncontrollable``: privileged nodes."""
        return np.flatnonzero(~self._cluster.state.controllable).astype(np.int64)

    @property
    def candidates(self) -> np.ndarray:
        """``A_candidate``: the monitored, throttleable subset."""
        return self._candidates

    @property
    def candidate_mask(self) -> np.ndarray:
        """Boolean mask over all nodes: True ⇔ in ``A_candidate``."""
        return self._candidate_mask

    @property
    def size(self) -> int:
        """``|A_candidate|``."""
        return len(self._candidates)

    def is_candidate(self, node_id: int) -> bool:
        """Whether ``node_id`` is in the candidate set."""
        return bool(self._candidate_mask[node_id])

    # ------------------------------------------------------------------
    # Candidate-set construction strategies (Figure 6 sweep)
    # ------------------------------------------------------------------
    @classmethod
    def select(
        cls,
        cluster: Cluster,
        size: int,
        strategy: CandidateSelector = CandidateSelector.FIRST_K,
        rng: np.random.Generator | None = None,
    ) -> "NodeSets":
        """Build a candidate set of ``size`` controllable nodes.

        Args:
            cluster: The machine.
            size: ``|A_candidate|``; 0 yields an empty candidate set
                (the "no power management" end of the Figure 6 sweep).
            strategy: How to choose among controllable nodes.
            rng: Required for ``RANDOM_K``.

        Raises:
            ConfigurationError: if fewer controllable nodes exist than
                requested, or RANDOM_K is used without an rng.
        """
        controllable = np.flatnonzero(cluster.state.controllable).astype(np.int64)
        if size < 0 or size > len(controllable):
            raise ConfigurationError(
                f"candidate size {size} outside [0, {len(controllable)}]"
            )
        if size == 0:
            ids = np.empty(0, dtype=np.int64)
        elif strategy is CandidateSelector.FIRST_K:
            ids = controllable[:size]
        elif strategy is CandidateSelector.SPREAD_K:
            positions = np.linspace(0, len(controllable) - 1, size)
            ids = controllable[np.unique(np.round(positions).astype(np.int64))]
            # rounding collisions can shrink the set; top up from the front
            if len(ids) < size:
                extra = np.setdiff1d(controllable, ids)[: size - len(ids)]
                ids = np.sort(np.concatenate([ids, extra]))
        elif strategy is CandidateSelector.RANDOM_K:
            if rng is None:
                raise ConfigurationError("RANDOM_K needs an rng")
            ids = np.sort(rng.choice(controllable, size=size, replace=False))
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigurationError(f"unknown strategy {strategy}")
        return cls(cluster, ids)
