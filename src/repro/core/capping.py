"""The power capping algorithm (Algorithm 1, Figure 2 of the paper).

Per control cycle, given the classified power state:

* **green** — ``Time_g`` increments.  Once the system has been green for
  ``T_g`` consecutive cycles ("steady green") and degraded nodes exist,
  every degraded node is upgraded one level; nodes reaching the top are
  removed from ``A_degraded``.  (``Time_g`` is *not* reset by the
  upgrade, so each further green cycle lifts the remaining nodes another
  level — a gradual restore, letting the system cool down after an
  episode, exactly as Figure 2 writes it.)
* **yellow** — ``Time_g`` resets; the target-selection policy picks
  ``A_target ⊆ A_candidate`` and each target is degraded one level and
  added to ``A_degraded``.
* **red** — ``Time_g`` resets; *every* candidate node is commanded to
  its lowest power state and ``A_degraded := A_candidate``.

The algorithm is pure decision logic: it never touches the cluster.  It
returns a :class:`CappingDecision` of ``(node, new_level)`` pairs — the
ordered pairs ``(i, l)`` the paper defines as the capping algorithm's
output — which the :class:`~repro.core.actuator.DvfsActuator` applies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.policies.base import PolicyContext, SelectionPolicy
from repro.core.sets import NodeSets
from repro.core.states import PowerState
from repro.errors import ConfigurationError, PowerManagementError

__all__ = ["CappingAction", "CappingDecision", "PowerCappingAlgorithm"]

_EMPTY_I = np.empty(0, dtype=np.int64)


class CappingAction(enum.Enum):
    """What Algorithm 1 decided to do this cycle."""

    NONE = "none"  #: no state change commanded
    UPGRADE = "upgrade"  #: steady-green restore (+1 level on degraded nodes)
    DEGRADE = "degrade"  #: yellow response (−1 level on the target set)
    EMERGENCY = "emergency"  #: red response (all candidates to lowest)


@dataclass(frozen=True)
class CappingDecision:
    """The output of one Algorithm 1 invocation.

    ``node_ids``/``new_levels`` are the ordered pairs ``(i, l)``; both
    empty when ``action`` is NONE.
    """

    state: PowerState
    action: CappingAction
    node_ids: np.ndarray
    new_levels: np.ndarray
    time_in_green: int  #: ``Time_g`` after this cycle

    def __post_init__(self) -> None:
        if len(self.node_ids) != len(self.new_levels):
            raise PowerManagementError("decision arrays misaligned")

    @property
    def num_targets(self) -> int:
        """Number of nodes commanded this cycle."""
        return len(self.node_ids)


class PowerCappingAlgorithm:
    """Algorithm 1 with persistent ``A_degraded`` and ``Time_g`` state.

    Args:
        sets: The node-set classification (defines ``A_candidate``).
        top_level: The highest DVFS level of the platform.
        steady_green_cycles: ``T_g`` — consecutive green cycles before
            upgrades begin (the paper's experiments use 10).
    """

    def __init__(
        self, sets: NodeSets, top_level: int, steady_green_cycles: int = 10
    ) -> None:
        if steady_green_cycles < 1:
            raise ConfigurationError("T_g must be >= 1 cycle")
        if top_level < 0:
            raise ConfigurationError("top_level must be >= 0")
        self._sets = sets
        self._top = int(top_level)
        self._t_g = int(steady_green_cycles)
        # A_degraded as a mask over all nodes (only candidate bits used).
        self._degraded = np.zeros(len(sets.total), dtype=bool)
        self._time_g = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def degraded_nodes(self) -> np.ndarray:
        """Current ``A_degraded``, ascending node ids."""
        return np.flatnonzero(self._degraded).astype(np.int64)

    @property
    def time_in_green(self) -> int:
        """``Time_g``: consecutive green cycles so far."""
        return self._time_g

    @property
    def steady_green_cycles(self) -> int:
        """``T_g``."""
        return self._t_g

    def reset(self) -> None:
        """Clear ``A_degraded`` and ``Time_g`` (between experiment runs)."""
        self._degraded[:] = False
        self._time_g = 0

    def mark_degraded(self, node_ids: np.ndarray) -> None:
        """Record out-of-band degrades in ``A_degraded``.

        The per-branch emergency capping path commands degrades outside
        the normal decide step; marking them here lets the ordinary
        steady-green restore lift those nodes back up once the episode
        ends.  Non-candidate ids are ignored (privileged nodes are never
        commanded, so they must never enter ``A_degraded``).
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        if len(ids) == 0:
            return
        candidate = np.zeros_like(self._degraded)
        candidate[self._sets.candidates] = True
        self._degraded[ids[candidate[ids]]] = True

    def restore(self, degraded_mask: np.ndarray, time_in_green: int) -> None:
        """Adopt journaled Algorithm 1 state after a controller crash.

        Args:
            degraded_mask: ``A_degraded`` as a boolean mask over all
                node ids (copied).
            time_in_green: ``Time_g`` at the journaled cycle.

        Raises:
            PowerManagementError: on a mask of the wrong length or a
                negative green streak — a corrupt journal must fail
                loudly, not resume a wrong control state.
        """
        mask = np.asarray(degraded_mask, dtype=bool)
        if mask.shape != self._degraded.shape:
            raise PowerManagementError(
                "journaled A_degraded mask does not match the cluster size"
            )
        if time_in_green < 0:
            raise PowerManagementError("journaled Time_g is negative")
        self._degraded = mask.copy()
        self._time_g = int(time_in_green)

    # ------------------------------------------------------------------
    # The decision step
    # ------------------------------------------------------------------
    def decide(
        self,
        state: PowerState,
        ctx: PolicyContext,
        policy: SelectionPolicy,
        upgradable: np.ndarray | None = None,
    ) -> CappingDecision:
        """Run one Algorithm 1 cycle and return the commanded pairs.

        Args:
            upgradable: Optional mask over all node ids restricting
                which degraded nodes may be upgraded this steady-green
                cycle (the degraded-mode ladder passes the set of nodes
                with *fresh* telemetry).  Excluded nodes simply stay in
                ``A_degraded`` for a later, better-informed cycle;
                ``None`` (the fault-free default) permits all.
        """
        if state is PowerState.GREEN:
            return self._green(ctx, upgradable)
        if state is PowerState.YELLOW:
            return self._yellow(ctx, policy)
        return self._red(ctx)

    def _green(
        self, ctx: PolicyContext, upgradable: np.ndarray | None = None
    ) -> CappingDecision:
        self._time_g += 1
        degraded = self.degraded_nodes
        if upgradable is not None and len(degraded) > 0:
            degraded = degraded[upgradable[degraded]]
        if self._time_g < self._t_g or len(degraded) == 0:
            return CappingDecision(
                PowerState.GREEN, CappingAction.NONE, _EMPTY_I, _EMPTY_I, self._time_g
            )
        # Steady green: upgrade every degraded node one level.
        levels = self._snapshot_levels(degraded, ctx)
        new_levels = np.minimum(levels + 1, self._top)
        reached_top = new_levels >= self._top
        self._degraded[degraded[reached_top]] = False
        return CappingDecision(
            PowerState.GREEN,
            CappingAction.UPGRADE,
            degraded,
            new_levels,
            self._time_g,
        )

    def _yellow(self, ctx: PolicyContext, policy: SelectionPolicy) -> CappingDecision:
        self._time_g = 0
        targets = np.asarray(policy.select(ctx), dtype=np.int64)
        if len(targets) == 0:
            return CappingDecision(
                PowerState.YELLOW, CappingAction.NONE, _EMPTY_I, _EMPTY_I, 0
            )
        self._validate_targets(targets, ctx)
        levels = self._snapshot_levels(targets, ctx)
        new_levels = np.maximum(levels - 1, 0)
        self._degraded[targets] = True
        return CappingDecision(
            PowerState.YELLOW, CappingAction.DEGRADE, targets, new_levels, 0
        )

    def _red(self, ctx: PolicyContext) -> CappingDecision:
        self._time_g = 0
        candidates = self._sets.candidates
        if len(candidates) == 0:
            return CappingDecision(
                PowerState.RED, CappingAction.NONE, _EMPTY_I, _EMPTY_I, 0
            )
        self._degraded[:] = False
        self._degraded[candidates] = True
        new_levels = np.zeros(len(candidates), dtype=np.int64)
        return CappingDecision(
            PowerState.RED, CappingAction.EMERGENCY, candidates, new_levels, 0
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_targets(self, targets: np.ndarray, ctx: PolicyContext) -> None:
        mask = self._sets.candidate_mask
        if targets.size and (
            targets.min() < 0 or targets.max() >= len(mask) or not mask[targets].all()
        ):
            raise PowerManagementError(
                "policy selected nodes outside the candidate set"
            )
        snapshot = ctx.snapshot
        idx = np.searchsorted(snapshot.node_ids, targets)
        if np.any(snapshot.job_id[idx] < 0):
            raise PowerManagementError("policy selected an idle node")
        if np.any(snapshot.level[idx] <= 0):
            raise PowerManagementError(
                "policy selected a node already at its lowest level"
            )

    @staticmethod
    def _snapshot_levels(node_ids: np.ndarray, ctx: PolicyContext) -> np.ndarray:
        """Levels of ``node_ids`` as known from the cycle's snapshot.

        ``A_degraded`` and every target set are subsets of
        ``A_candidate``, and the snapshot covers exactly the candidate
        set in ascending node-id order, so a binary search resolves the
        indices.
        """
        idx = np.searchsorted(ctx.snapshot.node_ids, node_ids)
        return ctx.snapshot.level[idx].astype(np.int64)
