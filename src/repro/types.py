"""Common type aliases and small value types shared across subsystems.

The simulator measures everything in SI units:

* time in **seconds** (simulated time, ``float``),
* power in **watts**,
* energy in **joules**,
* frequency in **hertz**,
* memory in **bytes**,
* NIC traffic in **bytes per second**.

Identifiers are plain ``int`` newtypes (``NodeId``, ``JobId``) so that the
structure-of-arrays cluster state can index numpy arrays directly with them.
"""

from __future__ import annotations

from typing import NewType

__all__ = [
    "NodeId",
    "JobId",
    "Seconds",
    "Watts",
    "Joules",
    "Hertz",
    "Bytes",
    "BytesPerSecond",
    "Level",
]

#: Index of a compute node within the cluster, ``0 <= NodeId < num_nodes``.
NodeId = NewType("NodeId", int)

#: Monotonically increasing identifier assigned by the job generator/queue.
JobId = NewType("JobId", int)

#: Simulated time or duration, seconds.
Seconds = float

#: Power, watts.
Watts = float

#: Energy, joules.
Joules = float

#: Clock frequency, hertz.
Hertz = float

#: Memory size, bytes.
Bytes = int

#: NIC throughput, bytes per second.
BytesPerSecond = float

#: DVFS level index.  ``0`` is the *lowest* power state (lowest frequency)
#: and ``num_levels - 1`` the highest, matching the paper's convention that
#: degrading a node means *decreasing* its level ``l`` by one.
Level = int
