"""Least-squares calibration of the Formula (1) coefficient tables.

On the real machine the per-level coefficients ``P_idle(l)``,
``P_cpu(l)``, ``P_mem(l)``, ``P_NIC(l)`` are not datasheet constants —
they are fitted from measurements: run the node at known operating
points, read a power meter, and regress.  This module implements that
workflow so a deployment of the architecture can calibrate its profile
model against its own hardware:

1. collect :class:`CalibrationSample` observations
   ``(level, cpu_util, mem_frac, nic_frac, measured_power)``;
2. :func:`fit_power_tables` solves, per DVFS level, the linear system
   ``P = β₀ + β₁·u + β₂·m + β₃·d`` by ordinary least squares
   (``numpy.linalg.lstsq``) — Formula (1) *is* linear in its
   coefficients at fixed level;
3. the result is a :class:`FittedPowerTables` exposing the same
   ``evaluate`` interface as :class:`~repro.power.model.PowerModel`,
   plus per-level fit diagnostics (RMSE, sample counts).

:func:`synthesize_samples` produces measurement campaigns against a
ground-truth model with configurable meter noise — used by the tests to
verify coefficient recovery and by examples to demonstrate the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, PowerManagementError
from repro.types import Watts
from repro.power.model import PowerModel

__all__ = [
    "CalibrationSample",
    "FittedPowerTables",
    "fit_power_tables",
    "synthesize_samples",
]

#: Minimum samples per level for a well-posed 4-coefficient fit.
MIN_SAMPLES_PER_LEVEL = 8


@dataclass(frozen=True)
class CalibrationSample:
    """One measured operating point of one node."""

    level: int
    cpu_util: float
    mem_frac: float
    nic_frac: float
    power_w: float

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ConfigurationError("negative DVFS level in sample")
        for name in ("cpu_util", "mem_frac", "nic_frac"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"sample {name} outside [0, 1]")
        if self.power_w < 0:
            raise ConfigurationError("negative measured power")


class FittedPowerTables:
    """Per-level Formula (1) coefficients recovered from measurements.

    Attributes:
        idle_w: ``P_idle(l)`` estimates, shape (L,).
        cpu_w: ``P_cpu(l)`` (total CPU dynamic) estimates, shape (L,).
        mem_w: ``P_mem(l)`` estimates, shape (L,).
        nic_w: ``P_NIC(l)`` estimates, shape (L,).
        rmse_w: Per-level root-mean-square residual of the fit.
        samples: Per-level sample counts.
    """

    def __init__(
        self,
        idle_w: np.ndarray,
        cpu_w: np.ndarray,
        mem_w: np.ndarray,
        nic_w: np.ndarray,
        rmse_w: np.ndarray,
        samples: np.ndarray,
    ) -> None:
        self.idle_w = idle_w
        self.cpu_w = cpu_w
        self.mem_w = mem_w
        self.nic_w = nic_w
        self.rmse_w = rmse_w
        self.samples = samples

    @property
    def num_levels(self) -> int:
        """Number of fitted levels."""
        return len(self.idle_w)

    def evaluate(
        self,
        level: int | np.ndarray,
        cpu_util: float | np.ndarray,
        mem_frac: float | np.ndarray,
        nic_frac: float | np.ndarray,
    ) -> float | np.ndarray:
        """Apply the fitted Formula (1) (same contract as ``PowerModel``)."""
        lv = np.asarray(level, dtype=np.int64)
        if lv.size and (lv.min() < 0 or lv.max() >= self.num_levels):
            raise PowerManagementError("level outside the fitted table")
        power = (
            self.idle_w[lv]
            + np.asarray(cpu_util) * self.cpu_w[lv]
            + np.asarray(mem_frac) * self.mem_w[lv]
            + np.asarray(nic_frac) * self.nic_w[lv]
        )
        if np.ndim(power) == 0:
            return float(power)
        return power

    def max_error_against(self, model: PowerModel) -> float:
        """Largest absolute coefficient error vs a reference model, watts.

        Used by tests and calibration reports to quantify recovery.
        """
        spec = model.spec
        if spec.num_levels != self.num_levels:
            raise PowerManagementError("level-count mismatch")
        return float(
            max(
                np.abs(self.idle_w - spec.idle_power_per_level).max(),
                np.abs(self.cpu_w - spec.cpu_dynamic_per_level).max(),
                np.abs(self.mem_w - spec.mem_dynamic_per_level).max(),
                np.abs(self.nic_w - spec.nic_dynamic_per_level).max(),
            )
        )


def fit_power_tables(
    samples: Iterable[CalibrationSample], num_levels: int
) -> FittedPowerTables:
    """Fit per-level Formula (1) coefficients by ordinary least squares.

    Args:
        samples: Measurement campaign; every level in ``range(num_levels)``
            needs at least :data:`MIN_SAMPLES_PER_LEVEL` samples with
            non-degenerate load variation.
        num_levels: Number of DVFS levels to fit.

    Raises:
        ConfigurationError: on missing levels or underdetermined fits.
    """
    if num_levels < 1:
        raise ConfigurationError("num_levels must be >= 1")
    by_level: dict[int, list[CalibrationSample]] = {l: [] for l in range(num_levels)}
    for sample in samples:
        if sample.level >= num_levels:
            raise ConfigurationError(
                f"sample at level {sample.level} beyond num_levels={num_levels}"
            )
        by_level[sample.level].append(sample)

    idle = np.empty(num_levels)
    cpu = np.empty(num_levels)
    mem = np.empty(num_levels)
    nic = np.empty(num_levels)
    rmse = np.empty(num_levels)
    counts = np.empty(num_levels, dtype=np.int64)
    for level, rows in by_level.items():
        if len(rows) < MIN_SAMPLES_PER_LEVEL:
            raise ConfigurationError(
                f"level {level} has {len(rows)} samples; "
                f"needs >= {MIN_SAMPLES_PER_LEVEL}"
            )
        design = np.array(
            [[1.0, r.cpu_util, r.mem_frac, r.nic_frac] for r in rows]
        )
        target = np.array([r.power_w for r in rows])
        if np.linalg.matrix_rank(design) < 4:
            raise ConfigurationError(
                f"level {level}: degenerate load variation (rank < 4); vary "
                "cpu/mem/nic independently across the campaign"
            )
        beta, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        residual = target - design @ beta
        idle[level], cpu[level], mem[level], nic[level] = beta
        rmse[level] = float(np.sqrt(np.mean(residual**2)))
        counts[level] = len(rows)
    return FittedPowerTables(idle, cpu, mem, nic, rmse, counts)


def synthesize_samples(
    model: PowerModel,
    rng: np.random.Generator,
    samples_per_level: int = 32,
    noise_std_w: Watts = 0.0,
) -> list[CalibrationSample]:
    """Generate a synthetic measurement campaign against ``model``.

    Operating points are drawn uniformly over the unit cube of
    (cpu, mem, nic); optional gaussian meter noise is added to the true
    power (floored at zero).
    """
    if samples_per_level < MIN_SAMPLES_PER_LEVEL:
        raise ConfigurationError(
            f"samples_per_level must be >= {MIN_SAMPLES_PER_LEVEL}"
        )
    if noise_std_w < 0:
        raise ConfigurationError("noise_std_w must be non-negative")
    campaign: list[CalibrationSample] = []
    for level in range(model.spec.num_levels):
        loads = rng.random((samples_per_level, 3))
        for u, m, d in loads:
            true_power = float(model.evaluate(level, u, m, d))
            measured = true_power
            if noise_std_w > 0:
                measured = max(0.0, true_power + rng.normal(0.0, noise_std_w))
            campaign.append(
                CalibrationSample(
                    level=level,
                    cpu_util=float(u),
                    mem_frac=float(m),
                    nic_frac=float(d),
                    power_w=measured,
                )
            )
    return campaign
