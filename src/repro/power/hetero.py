"""Formula (1) over heterogeneous clusters.

# reprolint: hot-path

:class:`HeterogeneousPowerModel` generalises
:class:`~repro.power.model.PowerModel` to clusters that mix node types
(see :meth:`repro.cluster.cluster.Cluster.heterogeneous`): coefficient
lookup becomes two-dimensional — ``idle[spec_index[i], level[i]]`` — but
remains a pair of vectorised gathers per term, so the hot path stays
loop-free.

Because a level means different watts (and a different frequency) on
different node types, per-node evaluation needs the node's identity; the
shared entry point is :meth:`evaluate_for_nodes`, which both model
classes implement (:class:`PowerModel` simply ignores the ids).  Use
:func:`make_power_model` to get the right implementation for a cluster.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.engine import canonical_power_sum
from repro.cluster.state import ClusterState
from repro.errors import ConfigurationError
from repro.power.model import PowerModel

__all__ = ["HeterogeneousPowerModel", "make_power_model"]


class HeterogeneousPowerModel:
    """Formula (1) evaluator for a mixed-type cluster.

    Args:
        state: The cluster state carrying ``specs`` and ``spec_index``.
    """

    def __init__(self, state: ClusterState) -> None:
        self._state_ref = state
        self.spec = state.spec  # primary spec (interface compatibility)
        specs = state.specs
        levels = specs[0].num_levels
        for s in specs[1:]:
            if s.num_levels != levels:
                raise ConfigurationError("specs must share the ladder depth")
        self._idle = np.stack([s.idle_power_per_level for s in specs])
        self._cpu = np.stack([s.cpu_dynamic_per_level for s in specs])
        self._mem = np.stack([s.mem_dynamic_per_level for s in specs])
        self._nic = np.stack([s.nic_dynamic_per_level for s in specs])
        self._spec_index = state.spec_index

    # ------------------------------------------------------------------
    # Node-identified evaluation
    # ------------------------------------------------------------------
    def evaluate_for_nodes(
        self,
        node_ids: np.ndarray,
        level: int | np.ndarray,
        cpu_util: float | np.ndarray,
        mem_frac: float | np.ndarray,
        nic_frac: float | np.ndarray,
    ) -> np.ndarray:
        """Formula (1) for specific nodes at explicit operating points.

        ``level`` (and the load terms) broadcast against ``node_ids``;
        a ``(L, 1)`` level array against ``(N,)`` ids yields an
        ``(L, N)`` matrix (used by the budget-partition baseline).
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        lv = np.asarray(level, dtype=np.int64)
        if lv.size and (lv.min() < 0 or lv.max() > self.spec.top_level):
            raise ConfigurationError("DVFS level out of range")
        si = self._spec_index[ids]
        power = (
            self._idle[si, lv]
            + np.asarray(cpu_util) * self._cpu[si, lv]
            + np.asarray(mem_frac) * self._mem[si, lv]
            + np.asarray(nic_frac) * self._nic[si, lv]
        )
        return np.asarray(power, dtype=np.float64)

    # ------------------------------------------------------------------
    # Whole-cluster evaluation (same interface as PowerModel)
    # ------------------------------------------------------------------
    def node_power(self, state: ClusterState) -> np.ndarray:
        """Per-node power of every node, watts."""
        si = state.spec_index
        lv = state.level
        return (
            self._idle[si, lv]
            + state.cpu_util * self._cpu[si, lv]
            + state.mem_frac * self._mem[si, lv]
            + state.nic_frac * self._nic[si, lv]
        )

    def system_power(self, state: ClusterState) -> float:
        """Total cluster power, watts (canonical ascending-id order)."""
        return canonical_power_sum(self.node_power(state))

    def power_at_level(
        self, state: ClusterState, node_ids: np.ndarray, levels: np.ndarray | int
    ) -> np.ndarray:
        """What-if power of the given nodes at hypothetical levels."""
        ids = np.asarray(node_ids, dtype=np.int64)
        lv = np.broadcast_to(np.asarray(levels, dtype=np.int64), ids.shape)
        lv = np.clip(lv, 0, self.spec.top_level)
        return self.evaluate_for_nodes(
            ids, lv, state.cpu_util[ids], state.mem_frac[ids], state.nic_frac[ids]
        )

    def degrade_savings(self, state: ClusterState, node_ids: np.ndarray) -> np.ndarray:
        """Per-node watts saved by one level of degradation."""
        ids = np.asarray(node_ids, dtype=np.int64)
        current = self.power_at_level(state, ids, state.level[ids])
        lower = self.power_at_level(state, ids, np.maximum(state.level[ids] - 1, 0))
        return current - lower


def make_power_model(cluster: Cluster) -> PowerModel | HeterogeneousPowerModel:
    """The right Formula (1) implementation for ``cluster``.

    Homogeneous clusters get the single-spec :class:`PowerModel` (leaner
    lookups); mixed clusters get :class:`HeterogeneousPowerModel`.
    """
    if cluster.is_heterogeneous:
        return HeterogeneousPowerModel(cluster.state)
    return PowerModel(cluster.spec)
