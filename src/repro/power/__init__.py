"""Power substrate: the Formula (1) profile model, metering and provision.

* :mod:`repro.power.model` — vectorised implementation of the paper's
  power profile model (Formula 1), used both as the simulator's ground
  truth and as the estimator's basis;
* :mod:`repro.power.meter` — the whole-system power meter (Observability
  assumption: "a power meter for the whole system is easy to implement"),
  with optional gaussian measurement noise;
* :mod:`repro.power.supply` — the power provision capability ``P_Max``
  and the Necessity/Operability assumption checks;
* :mod:`repro.power.estimator` — per-node and per-job power estimation
  from telemetry samples, the input of the target-selection policies.
"""

from repro.power.calibration import (
    CalibrationSample,
    FittedPowerTables,
    fit_power_tables,
    synthesize_samples,
)
from repro.power.estimator import NodePowerEstimator
from repro.power.hetero import HeterogeneousPowerModel, make_power_model
from repro.power.meter import SystemPowerMeter
from repro.power.model import PowerModel
from repro.power.supply import PowerProvision
from repro.power.thermal import (
    BreakerThermalModel,
    ReliabilityTracker,
    ThermalModel,
    failure_rate_multiplier,
)

__all__ = [
    "BreakerThermalModel",
    "CalibrationSample",
    "FittedPowerTables",
    "HeterogeneousPowerModel",
    "NodePowerEstimator",
    "PowerModel",
    "PowerProvision",
    "ReliabilityTracker",
    "SystemPowerMeter",
    "ThermalModel",
    "failure_rate_multiplier",
    "fit_power_tables",
    "make_power_model",
    "synthesize_samples",
]
