"""Power provision capability and the paper's assumption checks.

§II.D of the paper articulates four assumptions; two of them constrain the
relationship between the provision capability ``P_Max`` (what the power
supply subsystem can deliver) and the cluster:

* **Necessity** — ``P_Max < P_thy``: provisioning the theoretical peak
  would waste construction cost, so capping must exist;
* **Operability** — ``P_Max`` is high enough that the system functions
  normally and only occasional spikes need throttling.

:class:`PowerProvision` encodes those checks plus the derived quantities
experiments need: the overspend threshold ``P_th`` used by the ΔP×T metric
is the provision capability itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError
from repro.types import Watts

__all__ = ["PowerProvision"]


@dataclass(frozen=True)
class PowerProvision:
    """The designed capability of the power supply subsystem.

    Args:
        capability_w: ``P_Max`` — maximal deliverable power, watts.
    """

    capability_w: float

    def __post_init__(self) -> None:
        if self.capability_w <= 0:
            raise ConfigurationError("provision capability must be positive")

    @classmethod
    def for_cluster(cls, cluster: Cluster, fraction_of_peak: float) -> "PowerProvision":
        """Provision a cluster at a fraction of its theoretical peak.

        ``fraction_of_peak`` must lie strictly between the idle floor and
        1.0; values near 0.8–0.9 reproduce the paper's premise of "a clear
        gap between the maximum power actually used … and their aggregate
        theoretical peak usage".
        """
        if not 0.0 < fraction_of_peak < 1.0:
            raise ConfigurationError(
                "fraction_of_peak must lie in (0, 1) for Necessity to hold"
            )
        capability = fraction_of_peak * cluster.theoretical_max_power()
        provision = cls(capability_w=capability)
        provision.check_assumptions(cluster)
        return provision

    # ------------------------------------------------------------------
    # Assumption checks (§II.D)
    # ------------------------------------------------------------------
    def satisfies_necessity(self, cluster: Cluster) -> bool:
        """Necessity: ``P_Max < P_thy``."""
        return self.capability_w < cluster.theoretical_max_power()

    def satisfies_controllability(self, cluster: Cluster) -> bool:
        """Controllability: full throttling certainly fits under ``P_Max``.

        Conservative check: even with *no* privileged nodes, the cluster
        at its lowest levels must draw less than the capability.  Callers
        with privileged sets should use :meth:`throttled_floor` directly.
        """
        return cluster.minimum_power() < self.capability_w

    def throttled_floor(self, cluster: Cluster) -> float:
        """Power with every controllable node idle at level 0, privileged
        nodes saturated at the top level — the worst-case floor reachable
        by a red-state response, watts."""
        state = cluster.state
        mins = np.asarray([s.min_power() for s in state.specs])[state.spec_index]
        maxs = np.asarray([s.max_power() for s in state.specs])[state.spec_index]
        mask = state.controllable
        return float(mins[mask].sum() + maxs[~mask].sum())

    def check_assumptions(self, cluster: Cluster) -> None:
        """Raise :class:`ConfigurationError` if Necessity or
        Controllability fail for ``cluster``."""
        if not self.satisfies_necessity(cluster):
            raise ConfigurationError(
                f"Necessity violated: capability {self.capability_w:.0f} W is "
                f"not below P_thy {cluster.theoretical_max_power():.0f} W"
            )
        if self.throttled_floor(cluster) >= self.capability_w:
            raise ConfigurationError(
                "Controllability violated: even fully throttled, the cluster "
                f"draws {self.throttled_floor(cluster):.0f} W >= capability "
                f"{self.capability_w:.0f} W"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def overspend_threshold_w(self) -> float:
        """``P_th`` of the ΔP×T metric: the provision capability."""
        return self.capability_w

    def headroom(self, current_power_w: Watts) -> float:
        """Watts between a reading and the capability (negative if over)."""
        return self.capability_w - current_power_w
