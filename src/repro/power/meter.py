"""Whole-system power meter.

The architecture's Observability assumption says the *total* system power
"can be measured directly" — in the machine room that is a wall-power
meter; here it is the ground-truth power model plus an optional gaussian
sensor-noise term and a record of readings.  The power manager consumes
exactly one scalar per control cycle from :meth:`SystemPowerMeter.read`.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.state import ClusterState
from repro.errors import ConfigurationError
from repro.obs.facade import Observability, resolve_obs
from repro.power.model import PowerModel

__all__ = ["SystemPowerMeter"]


class SystemPowerMeter:
    """Measures total cluster power with optional gaussian noise.

    Args:
        model: Ground-truth power model.
        state: The cluster state being metered.
        noise_std_fraction: Standard deviation of multiplicative sensor
            noise, as a fraction of the true reading (0 disables noise —
            the default, since the paper treats the system meter as
            accurate).
        rng: Random generator for the noise stream (required when noise
            is enabled).
        obs: Observability facade; when its metric registry is live the
            zero-watt clamp count is mirrored as a collected series.
    """

    def __init__(
        self,
        model: PowerModel,
        state: ClusterState,
        noise_std_fraction: float = 0.0,
        rng: np.random.Generator | None = None,
        obs: Observability | None = None,
    ) -> None:
        if noise_std_fraction < 0.0:
            raise ConfigurationError("noise_std_fraction must be non-negative")
        if noise_std_fraction > 0.0 and rng is None:
            raise ConfigurationError("noisy meter needs an rng")
        self._model = model
        self._state = state
        self._noise_std = float(noise_std_fraction)
        self._rng = rng
        self._last_reading: float | None = None
        self._readings = 0
        self._clamped_readings = 0
        facade = resolve_obs(obs)
        if facade.metrics_on:
            facade.metrics.counter_func(
                "repro_meter_clamped_readings_total",
                "Meter readings the physical zero-watt clamp corrected",
                lambda: float(self._clamped_readings),
            )

    @property
    def last_reading(self) -> float | None:
        """Most recent value returned by :meth:`read` (None before any)."""
        return self._last_reading

    @property
    def readings(self) -> int:
        """Number of times the meter has been read."""
        return self._readings

    @property
    def clamped_readings(self) -> int:
        """Readings the zero-watt clamp had to correct.

        A gaussian noise factor ``1 + N(0, σ)`` goes non-positive on a
        draw of ``-1/σ`` standard deviations; physically the wattmeter
        bottoms out at 0 W instead of reporting negative power.  Each
        such clamp is counted — a non-trivial rate means the configured
        noise fraction is unphysically large.
        """
        return self._clamped_readings

    def true_power(self) -> float:
        """Noise-free total power, watts (the simulator's ground truth)."""
        return self._model.system_power(self._state)

    def read(self) -> float:
        """One metered sample of total system power, watts.

        Noise is multiplicative and clamped so a reading can never go
        negative even under extreme noise settings.
        """
        power = self.true_power()
        if self._noise_std > 0.0:
            assert self._rng is not None
            factor = 1.0 + self._rng.normal(0.0, self._noise_std)
            if factor < 0.0:
                factor = 0.0
                self._clamped_readings += 1
            power *= factor
        self._last_reading = power
        self._readings += 1
        return power
