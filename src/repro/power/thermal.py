"""Node thermal model and reliability accounting.

The paper motivates power capping partly through heat (§I.A): high
density power "causes overheating, which leads to problems of the
reliability and availability of the system", citing Feng's observation
that "the failure rate of a computing node doubles with every 10°C
increase in the temperature", and the ΔP×T metric is explicitly framed
as "the accumulative thermal impact caused by overspending power
budget".  This module closes that loop quantitatively:

* :class:`ThermalModel` — a first-order RC model per node: each node's
  temperature relaxes toward ``ambient + R_th · P`` with time constant
  ``tau``; vectorised over the whole cluster (one fused update per tick);
* :func:`failure_rate_multiplier` — Feng's doubling law,
  ``2^((T − T_ref)/10)``;
* :class:`ReliabilityTracker` — integrates the expected failure count
  over a run, so experiments can report "expected failures avoided by
  capping" alongside ΔP×T.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Seconds

__all__ = [
    "ThermalModel",
    "BreakerThermalModel",
    "failure_rate_multiplier",
    "ReliabilityTracker",
]


class ThermalModel:
    """First-order RC thermal model of every node in the cluster.

    ``dT/dt = (T_ss(P) − T) / tau`` with steady state
    ``T_ss = ambient + R_th · P``.  The exact discrete update over a
    tick of length ``dt`` is ``T ← T_ss + (T − T_ss)·exp(−dt/tau)``.

    Default parameters put an idle blade (~160 W) near 47°C and a
    saturated one (~340 W) near 75°C with a two-minute time constant —
    representative of air-cooled 2010-era blades.

    Args:
        num_nodes: Cluster size.
        ambient_c: Inlet air temperature, °C.
        thermal_resistance_c_per_w: ``R_th`` — steady-state °C per watt.
        time_constant_s: ``tau`` — thermal relaxation time, seconds.
    """

    def __init__(
        self,
        num_nodes: int,
        ambient_c: float = 22.0,
        thermal_resistance_c_per_w: float = 0.155,
        time_constant_s: Seconds = 120.0,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if thermal_resistance_c_per_w <= 0:
            raise ConfigurationError("thermal resistance must be positive")
        if time_constant_s <= 0:
            raise ConfigurationError("time constant must be positive")
        self.ambient_c = float(ambient_c)
        self.r_th = float(thermal_resistance_c_per_w)
        self.tau = float(time_constant_s)
        self.temperature_c = np.full(num_nodes, float(ambient_c))

    @property
    def num_nodes(self) -> int:
        """Number of modelled nodes."""
        return len(self.temperature_c)

    def steady_state(self, power_w: np.ndarray) -> np.ndarray:
        """Equilibrium temperature for the given per-node power, °C."""
        return self.ambient_c + self.r_th * np.asarray(power_w, dtype=np.float64)

    def step(self, power_w: np.ndarray, dt: Seconds) -> np.ndarray:
        """Advance every node's temperature by ``dt`` seconds.

        Args:
            power_w: Per-node power draw over the interval, shape (N,).
            dt: Interval length, seconds.

        Returns:
            The updated per-node temperatures (the internal array).
        """
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        p = np.asarray(power_w, dtype=np.float64)
        if p.shape != self.temperature_c.shape:
            raise ConfigurationError("power array shape mismatch")
        t_ss = self.steady_state(p)
        decay = np.exp(-dt / self.tau)
        self.temperature_c = t_ss + (self.temperature_c - t_ss) * decay
        return self.temperature_c

    def settle(self, power_w: np.ndarray) -> np.ndarray:
        """Jump every node straight to its equilibrium temperature."""
        self.temperature_c = self.steady_state(np.asarray(power_w, dtype=np.float64))
        return self.temperature_c

    def reset(self) -> None:
        """Return every node to ambient."""
        self.temperature_c[:] = self.ambient_c


class BreakerThermalModel:
    """Thermal-magnetic breaker trip model for a set of branch circuits.

    A molded-case breaker does not open the instant current exceeds its
    rating — a bimetal element heats with sustained overload and trips
    once enough ``I²t`` has accumulated.  This model captures that with a
    dimensionless **trip integral** ``u ∈ [0, 1]`` per branch:

    * **overload** (``P > rated``): ``u`` rises at rate
      ``(P/rated − 1) / trip_time_s`` — a 2× overload trips after
      ``trip_time_s`` seconds; milder overloads take proportionally
      longer (the inverse-time characteristic);
    * **hysteresis band** (``cooldown_fraction·rated ≤ P ≤ rated``): the
      element neither heats nor cools — exactly-rated load *holds* the
      integral where it is;
    * **cool-down** (``P < cooldown_fraction·rated``): ``u`` decays at
      ``1 / cool_time_s`` toward zero.

    Reaching ``u ≥ 1`` **latches** the breaker open (the branch is dark)
    until an explicit :meth:`reset` — re-closing a breaker is an operator
    action, never an automatic one.

    Args:
        rated_w: Per-branch continuous power rating, watts, shape (B,).
        trip_time_s: Seconds of sustained 2× overload that trip.
        cool_time_s: Seconds of deep cool-down that drain a full integral.
        cooldown_fraction: Lower edge of the no-heat/no-cool band, as a
            fraction of the rating.
    """

    def __init__(
        self,
        rated_w: np.ndarray,
        trip_time_s: Seconds = 60.0,
        cool_time_s: Seconds = 300.0,
        cooldown_fraction: float = 0.9,
    ) -> None:
        rated = np.asarray(rated_w, dtype=np.float64)
        if rated.ndim != 1 or rated.size < 1:
            raise ConfigurationError("rated_w must be a 1-D array of branches")
        if np.any(rated <= 0):
            raise ConfigurationError("breaker ratings must be positive")
        if trip_time_s <= 0:
            raise ConfigurationError("trip_time_s must be positive")
        if cool_time_s <= 0:
            raise ConfigurationError("cool_time_s must be positive")
        if not 0.0 < cooldown_fraction <= 1.0:
            raise ConfigurationError("cooldown_fraction must be in (0, 1]")
        self._rated = rated.copy()
        self._rated.setflags(write=False)
        self._trip_time = float(trip_time_s)
        self._cool_time = float(cool_time_s)
        self._cool_frac = float(cooldown_fraction)
        self._integral = np.zeros(rated.size, dtype=np.float64)
        self._tripped = np.zeros(rated.size, dtype=bool)
        self._trip_count = 0

    @property
    def num_branches(self) -> int:
        """Number of modelled branch circuits."""
        return len(self._rated)

    @property
    def rated_w(self) -> np.ndarray:
        """Per-branch continuous rating, watts (read-only)."""
        return self._rated

    @property
    def trip_integral(self) -> np.ndarray:
        """Current per-branch trip integral ``u`` (copy)."""
        return self._integral.copy()

    @property
    def tripped(self) -> np.ndarray:
        """Boolean mask of latched-open branches (copy)."""
        return self._tripped.copy()

    @property
    def trip_count(self) -> int:
        """Cumulative number of trip events."""
        return self._trip_count

    def step(self, power_w: np.ndarray, dt: Seconds) -> np.ndarray:
        """Advance the trip integrals by ``dt`` seconds of branch load.

        Args:
            power_w: Per-branch power draw over the interval, shape (B,).
            dt: Interval length, seconds.

        Returns:
            Boolean mask of branches that tripped *during this step*
            (already-open branches never re-trip).
        """
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        p = np.asarray(power_w, dtype=np.float64)
        if p.shape != self._integral.shape:
            raise ConfigurationError("branch power array shape mismatch")
        ratio = p / self._rated
        closed = ~self._tripped
        heating = closed & (ratio > 1.0)
        cooling = closed & (ratio < self._cool_frac)
        self._integral[heating] += (ratio[heating] - 1.0) * (dt / self._trip_time)
        self._integral[cooling] = np.maximum(
            self._integral[cooling] - dt / self._cool_time, 0.0
        )
        new_trips = closed & (self._integral >= 1.0)
        if np.any(new_trips):
            self._tripped |= new_trips
            self._integral[new_trips] = 1.0
            self._trip_count += int(new_trips.sum())
        return new_trips

    def reset(self, branch_ids: np.ndarray | None = None) -> None:
        """Re-close breakers (operator action): clear latch and integral.

        Args:
            branch_ids: Branches to re-close; all when omitted.
        """
        if branch_ids is None:
            self._tripped[:] = False
            self._integral[:] = 0.0
            return
        ids = np.asarray(branch_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self._rated)):
            raise ConfigurationError("branch id out of range in reset")
        self._tripped[ids] = False
        self._integral[ids] = 0.0


def failure_rate_multiplier(
    temperature_c: float | np.ndarray, reference_c: float = 50.0
) -> float | np.ndarray:
    """Feng's law: failure rate doubles per 10°C above ``reference_c``.

    Returns 1.0 at the reference temperature; 2.0 at +10°C; 0.5 at −10°C.
    """
    t = np.asarray(temperature_c, dtype=np.float64)
    mult = np.exp2((t - reference_c) / 10.0)
    if np.ndim(mult) == 0:
        return float(mult)
    return mult


class ReliabilityTracker:
    """Integrates expected node failures over a run.

    Expected failures over ``[0, T]`` = ``Σ_nodes ∫ λ₀ · 2^((T_i(t) −
    T_ref)/10) dt`` with ``λ₀`` the baseline per-node failure rate at the
    reference temperature.

    Args:
        base_rate_per_node_hour: ``λ₀`` in failures per node-hour at the
            reference temperature (default: one failure per node-decade,
            ≈ 1.14e-5 / node-hour).
        reference_c: Temperature at which the base rate applies, °C.
    """

    def __init__(
        self,
        base_rate_per_node_hour: float = 1.0 / (10 * 365 * 24),
        reference_c: float = 50.0,
    ) -> None:
        if base_rate_per_node_hour <= 0:
            raise ConfigurationError("base failure rate must be positive")
        self._lambda0_per_s = base_rate_per_node_hour / 3600.0
        self._reference_c = float(reference_c)
        self._expected_failures = 0.0
        self._peak_c = float("-inf")
        self._node_seconds = 0.0

    @property
    def expected_failures(self) -> float:
        """Accumulated expected failure count."""
        return self._expected_failures

    @property
    def peak_temperature_c(self) -> float:
        """Hottest node temperature seen."""
        return self._peak_c

    def accumulate(self, temperature_c: np.ndarray, dt: Seconds) -> None:
        """Charge ``dt`` seconds at the given per-node temperatures."""
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        t = np.asarray(temperature_c, dtype=np.float64)
        mult = np.exp2((t - self._reference_c) / 10.0)
        self._expected_failures += float(self._lambda0_per_s * dt * mult.sum())
        self._peak_c = max(self._peak_c, float(t.max()))
        self._node_seconds += dt * len(t)

    def mean_rate_multiplier(self) -> float:
        """Average failure-rate multiplier over the run so far."""
        if self._node_seconds <= 0.0:
            return 0.0
        baseline = self._lambda0_per_s * self._node_seconds
        return self._expected_failures / baseline
