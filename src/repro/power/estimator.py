"""Per-node and per-job power estimation from telemetry samples.

# reprolint: hot-path

The global power manager never reads ground truth: it sees the operating
points ``(l, u, m, d)`` the profiling agents sampled (possibly stale by up
to one sampling interval) and applies Formula (1) — exactly the paper's
design, where agents derive the model inputs from ``/proc`` and the NIC
chipset log.

Besides raw per-node estimates this module computes the per-*job*
aggregates the selection policies rank on:

* ``Power(J) = Σ_{x ∈ Nodes(J)} P(x)``  (state-based policies), and
* per-job one-level degradation savings (MPC-C / BFP).

The kernels are carried out by a
:class:`~repro.cluster.engine.ClusterEngine`: the default vector engine
evaluates Formula (1) as fused array arithmetic and aggregates with
``numpy.bincount``; the object engine applies the formula one node at a
time, exactly as the paper narrates, with bit-identical results.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.engine import ClusterEngine, get_engine
from repro.power.model import PowerModel

__all__ = ["NodePowerEstimator", "JobPowerTable"]


class JobPowerTable:
    """Per-job power aggregates for one telemetry snapshot.

    Attributes:
        job_ids: Distinct job ids present, ascending (shape J).
        power_w: Estimated ``Power(J)`` per job, watts (shape J).
        node_counts: Number of sampled nodes per job (shape J).
    """

    __slots__ = ("job_ids", "power_w", "node_counts", "_index")

    def __init__(
        self, job_ids: np.ndarray, power_w: np.ndarray, node_counts: np.ndarray
    ) -> None:
        self.job_ids = job_ids
        self.power_w = power_w
        self.node_counts = node_counts
        self._index = {int(j): k for k, j in enumerate(job_ids)}

    def __len__(self) -> int:
        return len(self.job_ids)

    def __contains__(self, job_id: int) -> bool:
        return int(job_id) in self._index

    def power_of(self, job_id: int) -> float:
        """``Power(J)`` for one job, watts.  KeyError if absent."""
        return float(self.power_w[self._index[int(job_id)]])

    def sorted_by_power(self, descending: bool = True) -> np.ndarray:
        """Job ids ordered by estimated power.

        Ties are broken by ascending job id (stable, deterministic).
        """
        order = np.argsort(self.power_w, kind="stable")
        if descending:
            order = order[::-1]
        return self.job_ids[order]


class NodePowerEstimator:
    """Applies Formula (1) to sampled operating points.

    Args:
        model: The power profile model (shared with the simulator ground
            truth; see :mod:`repro.power.model` for why that is faithful
            to the paper).
        engine: Hot-path engine evaluating the kernels (instance,
            registry name, or ``None`` for the default vector engine).
    """

    def __init__(
        self, model: PowerModel, engine: ClusterEngine | str | None = None
    ) -> None:
        self._model = model
        self._engine = get_engine(engine)

    @property
    def model(self) -> PowerModel:
        """The underlying Formula (1) evaluator."""
        return self._model

    @property
    def engine(self) -> ClusterEngine:
        """The hot-path engine evaluating this estimator's kernels."""
        return self._engine

    # ------------------------------------------------------------------
    # Per-node estimation
    # ------------------------------------------------------------------
    def estimate_nodes(
        self,
        level: np.ndarray,
        cpu_util: np.ndarray,
        mem_frac: np.ndarray,
        nic_frac: np.ndarray,
        node_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Estimated power of each sampled node, watts.

        ``node_ids`` identifies which node each sample came from; it is
        required on heterogeneous clusters (a level means different
        watts per node type) and ignored by the homogeneous model.
        """
        return self._engine.estimate_node_power(
            self._model, level, cpu_util, mem_frac, nic_frac, node_ids
        )

    def estimate_savings(
        self,
        level: np.ndarray,
        cpu_util: np.ndarray,
        mem_frac: np.ndarray,
        nic_frac: np.ndarray,
        node_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Watts each node would save if degraded one level, ``P − P'``.

        Zero for nodes already at the lowest level.  ``node_ids`` as in
        :meth:`estimate_nodes`.
        """
        return self._engine.estimate_savings(
            self._model, level, cpu_util, mem_frac, nic_frac, node_ids
        )

    # ------------------------------------------------------------------
    # Per-job aggregation
    # ------------------------------------------------------------------
    @staticmethod
    def aggregate_by_job(job_id: np.ndarray, values: np.ndarray) -> JobPowerTable:
        """Sum ``values`` over nodes grouped by job id.

        Nodes with ``job_id < 0`` (idle) are excluded — the paper defines
        ``Nodes(J)`` as the *non-idle* candidate nodes of a job, and a
        valid policy never targets idle nodes.
        """
        jid = np.asarray(job_id, dtype=np.int64)
        vals = np.asarray(values, dtype=np.float64)
        mask = jid >= 0
        jid = jid[mask]
        vals = vals[mask]
        if jid.size == 0:
            empty_i = np.empty(0, dtype=np.int64)
            return JobPowerTable(empty_i, np.empty(0, dtype=np.float64), empty_i)
        uniq, inverse, counts = np.unique(jid, return_inverse=True, return_counts=True)
        sums = np.bincount(inverse, weights=vals, minlength=len(uniq))
        return JobPowerTable(uniq, sums, counts.astype(np.int64))
