"""Vectorised implementation of the paper's power profile model (Formula 1).

# reprolint: hot-path

For a node at power state ``l`` with CPU utilisation ``u``, memory
occupancy fraction ``m`` and NIC utilisation fraction ``d``::

    P(l) = P_idle(l) + u · Σ_x P_x(l) + m · P_mem(l) + d · P_NIC(l)

The per-level coefficient vectors come pre-computed from
:class:`~repro.cluster.node.NodeSpec`; evaluating the whole cluster is
four fancy-indexed gathers plus fused arithmetic over flat arrays — the
single hottest operation in the simulator, hence no Python-level loops.

The same class serves two roles:

1. **Ground truth** — the simulator charges each node exactly this power
   (optionally the meter adds sensor noise on top);
2. **Estimation basis** — the profiling agents observe ``(l, u, m, d)``
   and the estimator applies the same formula, as the paper's agents do
   from ``/proc`` counters.  Estimation error then comes from *sampling*
   (staleness, quantisation), not from a mismatched model, mirroring the
   paper's premise that Formula (1) is "accurate enough for power
   management".
"""

from __future__ import annotations

import numpy as np

from repro.cluster.engine import canonical_power_sum
from repro.cluster.node import NodeSpec
from repro.cluster.state import ClusterState
from repro.errors import ConfigurationError

__all__ = ["PowerModel"]


class PowerModel:
    """Formula (1) evaluator for a homogeneous node specification.

    Args:
        spec: The node hardware spec providing per-level coefficients.
    """

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        # Local aliases keep the hot path free of attribute chains.
        self._idle = spec.idle_power_per_level
        self._cpu = spec.cpu_dynamic_per_level
        self._mem = spec.mem_dynamic_per_level
        self._nic = spec.nic_dynamic_per_level

    # ------------------------------------------------------------------
    # Scalar / array evaluation from raw operating points
    # ------------------------------------------------------------------
    def evaluate(
        self,
        level: int | np.ndarray,
        cpu_util: float | np.ndarray,
        mem_frac: float | np.ndarray,
        nic_frac: float | np.ndarray,
    ) -> float | np.ndarray:
        """Apply Formula (1) to explicit operating points.

        All arguments broadcast against each other; levels index the
        coefficient tables.  Returns watts (scalar or array, matching the
        broadcast shape).
        """
        lv = np.asarray(level, dtype=np.int64)
        if lv.size and (lv.min() < 0 or lv.max() > self.spec.top_level):
            raise ConfigurationError("DVFS level out of range in evaluate()")
        power = (
            self._idle[lv]
            + np.asarray(cpu_util) * self._cpu[lv]
            + np.asarray(mem_frac) * self._mem[lv]
            + np.asarray(nic_frac) * self._nic[lv]
        )
        if np.ndim(power) == 0:
            return float(power)
        return power

    def evaluate_for_nodes(
        self,
        node_ids: np.ndarray,
        level: int | np.ndarray,
        cpu_util: float | np.ndarray,
        mem_frac: float | np.ndarray,
        nic_frac: float | np.ndarray,
    ) -> np.ndarray:
        """Node-identified evaluation (shared interface with the
        heterogeneous model).  On a homogeneous spec the ids only fix
        the broadcast shape: a ``(L, 1)`` level array against ``(N,)``
        ids yields an ``(L, N)`` matrix.
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        lv = np.asarray(level, dtype=np.int64)
        value = self.evaluate(
            np.broadcast_to(lv, np.broadcast_shapes(lv.shape, ids.shape)),
            cpu_util,
            mem_frac,
            nic_frac,
        )
        return np.asarray(value, dtype=np.float64)

    # ------------------------------------------------------------------
    # Whole-cluster evaluation
    # ------------------------------------------------------------------
    def node_power(self, state: ClusterState) -> np.ndarray:
        """Per-node power of every node in ``state``, watts (length N)."""
        lv = state.level
        return (
            self._idle[lv]
            + state.cpu_util * self._cpu[lv]
            + state.mem_frac * self._mem[lv]
            + state.nic_frac * self._nic[lv]
        )

    def system_power(self, state: ClusterState) -> float:
        """Total cluster power, watts (canonical ascending-id order)."""
        return canonical_power_sum(self.node_power(state))

    # ------------------------------------------------------------------
    # What-if evaluation (used by MPC-C's ``P'(x)`` and BFP)
    # ------------------------------------------------------------------
    def power_at_level(
        self, state: ClusterState, node_ids: np.ndarray, levels: np.ndarray | int
    ) -> np.ndarray:
        """Power the given nodes *would* draw at hypothetical ``levels``.

        Holds the nodes' current load fixed and re-evaluates Formula (1)
        at the proposed DVFS levels — exactly the estimate ``P'(x)``
        Algorithm 2 uses for "power consumption of node x when the power
        budget is decreased by one level".
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        lv = np.broadcast_to(np.asarray(levels, dtype=np.int64), ids.shape)
        lv = np.clip(lv, 0, self.spec.top_level)
        return (
            self._idle[lv]
            + state.cpu_util[ids] * self._cpu[lv]
            + state.mem_frac[ids] * self._mem[lv]
            + state.nic_frac[ids] * self._nic[lv]
        )

    def degrade_savings(self, state: ClusterState, node_ids: np.ndarray) -> np.ndarray:
        """Per-node watts saved by one level of degradation, ``P(x) − P'(x)``.

        Nodes already at the lowest level save exactly zero.
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        current = self.power_at_level(state, ids, state.level[ids])
        lower = self.power_at_level(
            state, ids, np.maximum(state.level[ids] - 1, 0)
        )
        return current - lower
