"""Ablation sweeps over the design choices DESIGN.md calls out.

The paper fixes several knobs without exploring them (T_g = 10 cycles,
7%/16% margins, τ = one control period) and defers "other selection
policies" to future work.  These sweeps fill that gap:

* :func:`sweep_steady_green` — T_g: patience before restoring degraded
  nodes trades recovery speed (performance) against oscillation (power);
* :func:`sweep_margins` — the (margin_high, margin_low) pair: tighter
  margins throttle earlier (safer, slower);
* :func:`sweep_control_period` — τ: slower control reacts later, letting
  spikes run further past the thresholds;
* :func:`policy_zoo` — every registered policy, including the paper's
  un-evaluated ones (MPC-C, LPC, LPC-C, BFP, HRI-C) and our extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig7_policies import Fig7Result, run_fig7
from repro.experiments.sweep import SweepCell, SweepReport, baseline_cell, run_sweep
from repro.metrics.summary import compare_runs

__all__ = [
    "AblationRow",
    "sweep_steady_green",
    "sweep_margins",
    "sweep_control_period",
    "policy_zoo",
]


@dataclass(frozen=True)
class AblationRow:
    """One configuration's outcome in an ablation sweep."""

    label: str
    performance: float
    p_max_ratio: float
    overspend_reduction: float
    cplj_fraction: float
    entered_red: bool


def _row(
    report: SweepReport, cell: SweepCell, base: SweepCell, label: str
) -> AblationRow:
    result = report.result_for(cell)
    baseline = report.result_for(base)
    comparison = compare_runs(result.metrics, baseline.metrics)
    return AblationRow(
        label=label,
        performance=comparison.performance,
        p_max_ratio=comparison.p_max_ratio,
        overspend_reduction=comparison.overspend_reduction,
        cplj_fraction=comparison.cplj_fraction,
        entered_red=result.entered_red,
    )


def _evaluate_grid(
    specs: list[tuple[ExperimentConfig, str, str]],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list[AblationRow]:
    """Run ``(config, policy, label)`` rows as one deduplicated sweep.

    Every row contributes its managed cell plus the shared unmanaged
    baseline of its world; rows that only differ in manager knobs (T_g,
    margins, sampling cadence, policy) therefore collapse onto *one*
    baseline simulation per world.
    """
    pairs = [
        (SweepCell(cfg, policy), baseline_cell(cfg))
        for cfg, policy, _label in specs
    ]
    cells = [cell for pair in pairs for cell in pair]
    report = run_sweep(cells, jobs=jobs, cache=cache)
    return [
        _row(report, cell, base, label)
        for (cell, base), (_cfg, _policy, label) in zip(pairs, specs)
    ]


def sweep_steady_green(
    config: ExperimentConfig,
    values: tuple[int, ...] = (2, 5, 10, 20, 40),
    policy: str = "mpc",
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list[AblationRow]:
    """Sweep ``T_g`` (the paper uses 10 cycles)."""
    if not values:
        raise ConfigurationError("empty T_g sweep")
    return _evaluate_grid(
        [
            (replace(config, steady_green_cycles=v), policy, f"T_g={v}")
            for v in values
        ],
        jobs=jobs,
        cache=cache,
    )


def sweep_margins(
    config: ExperimentConfig,
    pairs: tuple[tuple[float, float], ...] = (
        (0.03, 0.08),
        (0.05, 0.12),
        (0.07, 0.16),  # the paper's pair
        (0.10, 0.22),
    ),
    policy: str = "mpc",
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list[AblationRow]:
    """Sweep the (margin_high, margin_low) threshold pair."""
    return _evaluate_grid(
        [
            (
                replace(config, margin_high=high, margin_low=low),
                policy,
                f"margins={high:.0%}/{low:.0%}",
            )
            for high, low in pairs
        ],
        jobs=jobs,
        cache=cache,
    )


def sweep_control_period(
    config: ExperimentConfig,
    periods_s: tuple[float, ...] = (0.5, 1.0, 2.0, 5.0),
    policy: str = "mpc",
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list[AblationRow]:
    """Sweep the control-cycle period τ.

    τ changes the simulated world itself (telemetry cadence, thermal
    stepping), so unlike the manager-knob sweeps each period gets its
    own baseline cell.
    """
    return _evaluate_grid(
        [
            (replace(config, control_period_s=p), policy, f"tau={p:g}s")
            for p in periods_s
        ],
        jobs=jobs,
        cache=cache,
    )


def policy_zoo(
    config: ExperimentConfig,
    policies: tuple[str, ...] = (
        "mpc",
        "mpc-c",
        "lpc",
        "lpc-c",
        "bfp",
        "hri",
        "hri-c",
        "random",
        "fair",
        "hybrid",
    ),
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> Fig7Result:
    """The Figure 7 protocol across every policy in the library."""
    return run_fig7(config, policies=policies, jobs=jobs, cache=cache)
