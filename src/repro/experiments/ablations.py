"""Ablation sweeps over the design choices DESIGN.md calls out.

The paper fixes several knobs without exploring them (T_g = 10 cycles,
7%/16% margins, τ = one control period) and defers "other selection
policies" to future work.  These sweeps fill that gap:

* :func:`sweep_steady_green` — T_g: patience before restoring degraded
  nodes trades recovery speed (performance) against oscillation (power);
* :func:`sweep_margins` — the (margin_high, margin_low) pair: tighter
  margins throttle earlier (safer, slower);
* :func:`sweep_control_period` — τ: slower control reacts later, letting
  spikes run further past the thresholds;
* :func:`policy_zoo` — every registered policy, including the paper's
  un-evaluated ones (MPC-C, LPC, LPC-C, BFP, HRI-C) and our extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentConfig, run_experiment
from repro.experiments.fig7_policies import Fig7Result, run_fig7
from repro.metrics.summary import compare_runs

__all__ = [
    "AblationRow",
    "sweep_steady_green",
    "sweep_margins",
    "sweep_control_period",
    "policy_zoo",
]


@dataclass(frozen=True)
class AblationRow:
    """One configuration's outcome in an ablation sweep."""

    label: str
    performance: float
    p_max_ratio: float
    overspend_reduction: float
    cplj_fraction: float
    entered_red: bool


def _evaluate(config: ExperimentConfig, policy: str, label: str) -> AblationRow:
    baseline = run_experiment(config, None)
    result = run_experiment(config, policy)
    comparison = compare_runs(result.metrics, baseline.metrics)
    return AblationRow(
        label=label,
        performance=comparison.performance,
        p_max_ratio=comparison.p_max_ratio,
        overspend_reduction=comparison.overspend_reduction,
        cplj_fraction=comparison.cplj_fraction,
        entered_red=result.entered_red,
    )


def sweep_steady_green(
    config: ExperimentConfig,
    values: tuple[int, ...] = (2, 5, 10, 20, 40),
    policy: str = "mpc",
) -> list[AblationRow]:
    """Sweep ``T_g`` (the paper uses 10 cycles)."""
    if not values:
        raise ConfigurationError("empty T_g sweep")
    return [
        _evaluate(replace(config, steady_green_cycles=v), policy, f"T_g={v}")
        for v in values
    ]


def sweep_margins(
    config: ExperimentConfig,
    pairs: tuple[tuple[float, float], ...] = (
        (0.03, 0.08),
        (0.05, 0.12),
        (0.07, 0.16),  # the paper's pair
        (0.10, 0.22),
    ),
    policy: str = "mpc",
) -> list[AblationRow]:
    """Sweep the (margin_high, margin_low) threshold pair."""
    rows = []
    for high, low in pairs:
        cfg = replace(config, margin_high=high, margin_low=low)
        rows.append(
            _evaluate(cfg, policy, f"margins={high:.0%}/{low:.0%}")
        )
    return rows


def sweep_control_period(
    config: ExperimentConfig,
    periods_s: tuple[float, ...] = (0.5, 1.0, 2.0, 5.0),
    policy: str = "mpc",
) -> list[AblationRow]:
    """Sweep the control-cycle period τ."""
    return [
        _evaluate(
            replace(config, control_period_s=p), policy, f"tau={p:g}s"
        )
        for p in periods_s
    ]


def policy_zoo(
    config: ExperimentConfig,
    policies: tuple[str, ...] = (
        "mpc",
        "mpc-c",
        "lpc",
        "lpc-c",
        "bfp",
        "hri",
        "hri-c",
        "random",
        "fair",
        "hybrid",
    ),
) -> Fig7Result:
    """The Figure 7 protocol across every policy in the library."""
    return run_fig7(config, policies=policies)
