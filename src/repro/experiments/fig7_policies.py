"""Figure 7 and §V.D's headline numbers: the policy comparison.

With all nodes in the candidate set, the paper reports (MPC and HRI):

* system performance lost ≈ 2% under either policy;
* maximal power reduced ≈ 10%;
* ΔP×T reduced 73% (MPC) and 66% (HRI) — the metric that separates the
  policies;
* CPLJ(MPC) exceeds CPLJ(HRI) by ≈ 1.4 percentage points;
* the capped system never enters the red state.

This harness runs the unmanaged baseline plus one run per requested
policy over the identical stream and reports exactly those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
)
from repro.experiments.sweep import SweepCell, baseline_cell, run_sweep
from repro.metrics.summary import compare_runs

__all__ = ["PolicyOutcome", "Fig7Result", "run_fig7"]


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's row of the Figure 7 comparison."""

    policy: str
    performance: float  #: Performance(cap); paper ≈ 0.98
    performance_loss: float  #: 1 − performance; paper ≈ 0.02
    cplj: int
    cplj_fraction: float
    p_max_ratio: float  #: capped/uncapped peak; paper ≈ 0.90
    overspend_reduction: float  #: ΔP×T decrease; paper 0.73 / 0.66
    entered_red: bool  #: paper: never
    commands_sent: int
    result: ExperimentResult


@dataclass(frozen=True)
class Fig7Result:
    """The full policy comparison."""

    baseline: ExperimentResult
    outcomes: list[PolicyOutcome]

    def outcome(self, policy: str) -> PolicyOutcome:
        """The row for ``policy``.

        Raises:
            ConfigurationError: if the policy was not part of the run.
        """
        for row in self.outcomes:
            if row.policy == policy:
                return row
        raise ConfigurationError(f"no outcome for policy {policy!r}")

    def cplj_gap(self, a: str = "mpc", b: str = "hri") -> float:
        """``CPLJ_a − CPLJ_b`` as a fraction of finished jobs (paper:
        MPC beats HRI by ≈ 1.4%)."""
        return self.outcome(a).cplj_fraction - self.outcome(b).cplj_fraction


def run_fig7(
    config: ExperimentConfig,
    policies: tuple[str, ...] = ("mpc", "hri"),
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> Fig7Result:
    """Run the Figure 7 comparison: baseline + one run per policy.

    The baseline is the shared sweep cell every harness dedupes onto;
    ``jobs`` fans the policy runs over worker processes (bit-identical
    to serial) and ``cache`` replays unchanged cells from disk.
    """
    base = baseline_cell(config)
    policy_cells = {p: SweepCell(config, p) for p in policies}
    report = run_sweep(
        [base, *policy_cells.values()], jobs=jobs, cache=cache
    )
    baseline = report.result_for(base)
    outcomes: list[PolicyOutcome] = []
    for policy in policies:
        result = report.result_for(policy_cells[policy])
        comparison = compare_runs(result.metrics, baseline.metrics)
        outcomes.append(
            PolicyOutcome(
                policy=policy,
                performance=comparison.performance,
                performance_loss=1.0 - comparison.performance,
                cplj=result.metrics.cplj,
                cplj_fraction=comparison.cplj_fraction,
                p_max_ratio=comparison.p_max_ratio,
                overspend_reduction=comparison.overspend_reduction,
                entered_red=result.entered_red,
                commands_sent=result.commands_sent,
                result=result,
            )
        )
    return Fig7Result(baseline=baseline, outcomes=outcomes)
