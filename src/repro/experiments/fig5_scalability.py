"""Figure 5: scalability of the global manager.

The paper plots the CPU utilisation of the central management node
against ``|A_candidate|`` and observes nonlinear growth — the argument
for monitoring only a subset of nodes.  This harness produces the curve
two ways:

1. **modelled** — the calibrated
   :class:`~repro.telemetry.cost.ManagementCostModel` evaluated at each
   size (the figure's curve);
2. **measured** — the wall-clock time our own collector + estimator +
   policy-ranking pipeline takes per control cycle at each size, on a
   synthetic fully-busy cluster.  This grounds the model in a real
   implementation; the benchmark suite records it with pytest-benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.policies.base import PolicyContext, make_policy
from repro.core.sets import NodeSets
from repro.core.thresholds import PowerThresholds
from repro.errors import ConfigurationError
from repro.power.estimator import NodePowerEstimator
from repro.power.model import PowerModel
from repro.sim.random import RandomSource
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.cost import ManagementCostModel

__all__ = ["Fig5Result", "run_fig5", "measure_collection_cycle_s"]

#: The candidate sizes the harness sweeps by default.
DEFAULT_SIZES: tuple[int, ...] = (0, 8, 16, 32, 48, 64, 96, 128)


@dataclass(frozen=True)
class Fig5Result:
    """The Figure 5 curve.

    Attributes:
        sizes: Candidate-set sizes (x-axis).
        modelled_cpu: Modelled management-node CPU utilisation per size.
        measured_cycle_s: Measured wall-seconds of one collection +
            estimation + ranking cycle of this implementation per size
            (None entries when measurement was skipped).
    """

    sizes: np.ndarray
    modelled_cpu: np.ndarray
    measured_cycle_s: np.ndarray | None

    def nonlinearity(self) -> float:
        """Per-node cost at the largest size over that at the smallest
        non-zero size — > 1 means superlinear growth (the figure's point).
        """
        nz = self.sizes > 0
        sizes = self.sizes[nz]
        cpu = self.modelled_cpu[nz]
        if len(sizes) < 2:
            raise ConfigurationError("need >= 2 non-zero sizes")
        return float((cpu[-1] / sizes[-1]) / (cpu[0] / sizes[0]))


def _busy_cluster(num_nodes: int) -> Cluster:
    """A fully-busy synthetic cluster: one 8-node job per 8-node block."""
    cluster = Cluster.tianhe_1a(num_nodes=num_nodes)
    state = cluster.state
    rng = RandomSource(seed=42).stream("experiments.fig5.busy_cluster")
    for start in range(0, num_nodes, 8):
        ids = np.arange(start, min(start + 8, num_nodes))
        state.assign_job(ids, start // 8)
        state.set_load(
            ids,
            cpu_util=rng.uniform(0.5, 1.0),
            mem_frac=rng.uniform(0.2, 0.6),
            nic_frac=rng.uniform(0.0, 0.4),
        )
    return cluster


def measure_collection_cycle_s(
    size: int, num_nodes: int = 128, repetitions: int = 50
) -> float:
    """Median wall-seconds of one full monitoring cycle at ``size``.

    One cycle = telemetry sweep + per-node Formula (1) estimation +
    per-job aggregation + MPC ranking, i.e. the management node's work.
    """
    if size == 0:
        return 0.0
    cluster = _busy_cluster(num_nodes)
    sets = NodeSets.select(cluster, size)
    collector = TelemetryCollector(cluster.state, sets.candidates)
    estimator = NodePowerEstimator(PowerModel(cluster.spec))
    policy = make_policy("mpc")
    thresholds = PowerThresholds(p_low=1.0, p_high=2.0)
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        snapshot = collector.collect(now=0.0)
        ctx = PolicyContext(snapshot, collector.previous, estimator, 10.0, thresholds)
        policy.select(ctx)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def run_fig5(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    cost_model: ManagementCostModel | None = None,
    measure: bool = True,
    num_nodes: int = 128,
) -> Fig5Result:
    """Produce the Figure 5 curve.

    Args:
        sizes: Candidate-set sizes to sweep (must be within the cluster).
        cost_model: The calibrated cost model; default coefficients.
        measure: Also measure this implementation's per-cycle cost.
        num_nodes: Cluster size for the measured path.
    """
    if any(s < 0 or s > num_nodes for s in sizes):
        raise ConfigurationError("sizes must lie within [0, num_nodes]")
    model = cost_model if cost_model is not None else ManagementCostModel()
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    modelled = np.asarray(model.cpu_utilization(sizes_arr), dtype=np.float64)
    measured = None
    if measure:
        measured = np.asarray(
            [measure_collection_cycle_s(int(s), num_nodes) for s in sizes_arr]
        )
    return Fig5Result(
        sizes=sizes_arr, modelled_cpu=modelled, measured_cycle_s=measured
    )
