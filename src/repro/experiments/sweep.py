"""Deterministic parallel experiment orchestration.

The paper's §V.C protocol is an embarrassingly parallel grid — policy ×
seed × candidate size × fault preset — yet every harness used to walk it
one :func:`run_experiment` call at a time in one process.  This module
is the campaign layer: a declarative list of :class:`SweepCell`\\ s is
fanned out over a spawn-context :class:`~concurrent.futures.
ProcessPoolExecutor` and merged under a hard contract:

**The merged output is bit-identical to serial execution, regardless of
worker count or completion order.**

Three design rules make that contract hold:

1. *Cell-keyed randomness.*  Every cell's world is seeded exclusively
   from its own configuration (``RandomSource(seed=config.seed)``
   inside :func:`run_experiment`); nothing about worker identity, pool
   size or host CPU topology (reprolint RL107 bans reading it) ever
   reaches a result.
2. *Canonical ordering.*  Results are keyed and ordered by the cell's
   content address (:func:`repro.experiments.serialize.config_hash`),
   never by completion time.
3. *Normalized transport.*  Results that cross a process boundary or
   the cache travel as canonical JSON; :meth:`SweepReport.merged_json`
   renders every run through the same encoder, so ``jobs=1`` and
   ``jobs=64`` produce the same bytes.

Underneath sits the content-addressed :class:`~repro.experiments.cache.
ResultCache`: identical cells — the unmanaged baseline that Figure 6,
Figure 7 and every ablation share, or an unchanged CI matrix cell — are
simulated once and replayed from disk afterwards.
"""

from __future__ import annotations

import json
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import MISSING, dataclass, fields, replace
from multiprocessing import get_context

from repro.errors import ConfigurationError
from repro.experiments.cache import CODE_VERSION, ResultCache
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.experiments.serialize import (
    canonical_json,
    config_from_dict,
    config_hash,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "MANAGER_ONLY_FIELDS",
    "SweepCell",
    "SweepReport",
    "SweepStats",
    "baseline_cell",
    "baseline_config",
    "cell_key",
    "run_sweep",
    "validate_jobs",
]

#: Fields of :class:`ExperimentConfig` that are read *only* when a
#: policy is managing the run.  With ``policy=None`` no manager, meter,
#: fault injector, integrity pipeline, HA layer or provision runtime is
#: even constructed (see :func:`run_experiment`), so two unmanaged
#: configs differing only here simulate identically.
#: :func:`baseline_config` resets them to the class defaults, which is
#: what lets one cached baseline cell serve fig6, fig7 and every
#: manager-knob ablation.  ``tests/experiments/test_sweep.py`` holds the
#: property test backing this list; extend it (or this list) whenever a
#: new manager-only field is added.
MANAGER_ONLY_FIELDS: tuple[str, ...] = (
    "candidate_size",
    "candidate_strategy",
    "steady_green_cycles",
    "margin_high",
    "margin_low",
    "adjust_every_cycles",
    "cost_model",
    "faults",
    "degraded",
    "ha",
    "provision",
    "attach_provision",
)


def validate_jobs(jobs: object) -> int:
    """Validate a worker count; friendly errors, default serial.

    ``None`` means "unset" and resolves to serial execution.  Anything
    that is not a positive integer (0, negatives, floats, non-numeric
    strings) raises :class:`ConfigurationError` with the offending
    value, matching the CLI's unknown-preset error UX.
    """
    if jobs is None:
        return 1
    if isinstance(jobs, bool) or not isinstance(jobs, (int, str)):
        raise ConfigurationError(
            f"--jobs must be a positive integer, got {jobs!r}"
        )
    try:
        count = int(jobs)
    except ValueError:
        raise ConfigurationError(
            f"--jobs must be a positive integer, got {jobs!r}"
        ) from None
    if count < 1:
        raise ConfigurationError(
            f"--jobs must be a positive integer, got {jobs!r}"
        )
    return count


@dataclass(frozen=True)
class SweepCell:
    """One cell of a sweep grid: a configuration, a policy, a label.

    Only *names* are accepted for the policy (not policy instances):
    a cell must be fully serializable so it can cross a process
    boundary and address the result cache.
    """

    config: ExperimentConfig
    policy: str | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.policy is not None and not isinstance(self.policy, str):
            raise ConfigurationError(
                "sweep cells take policy *names* (or None for the "
                f"unmanaged baseline), got {type(self.policy).__name__}"
            )


def cell_key(cell: SweepCell, *, salt: str = CODE_VERSION) -> str:
    """The cell's content address (also its cache key)."""
    return config_hash(
        cell.config, cell.policy, salt=salt, label=cell.label
    )


def baseline_config(config: ExperimentConfig) -> ExperimentConfig:
    """``config`` normalized for an unmanaged (``policy=None``) run.

    Resets every :data:`MANAGER_ONLY_FIELDS` entry to its class
    default so all baselines that simulate identically also *hash*
    identically.  Note the returned config is what lands in
    ``result.config`` (and in the informational ``p_low_w``/``p_high_w``
    threshold fields, which an unmanaged run derives from the margins):
    a shared baseline reports the default margins, not any particular
    caller's.
    """
    defaults = {
        f.name: (
            f.default_factory()
            if f.default_factory is not MISSING
            else f.default
        )
        for f in fields(ExperimentConfig)
        if f.name in MANAGER_ONLY_FIELDS
    }
    return replace(config, **defaults)


def baseline_cell(config: ExperimentConfig) -> SweepCell:
    """The shared unmanaged-baseline cell for ``config``'s world."""
    return SweepCell(baseline_config(config), policy=None)


@dataclass
class SweepStats:
    """What one :func:`run_sweep` call actually did."""

    cells: int = 0
    computed: int = 0
    cache_hits: int = 0
    #: Cells that ran in worker processes (0 in serial mode).
    parallel: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat mapping for JSON payloads (CI warm-cache assertions)."""
        return {
            "cells": self.cells,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "parallel": self.parallel,
        }


@dataclass(frozen=True)
class SweepReport:
    """The merged outcome of one sweep.

    ``cells`` are the deduplicated grid cells in canonical (cell-key)
    order; ``results`` maps cell key → result.  Lookup by the original
    cell object goes through :meth:`result_for`.
    """

    cells: tuple[SweepCell, ...]
    results: dict[str, ExperimentResult]
    stats: SweepStats
    salt: str = CODE_VERSION

    def result_for(self, cell: SweepCell) -> ExperimentResult:
        """The result of ``cell`` (or its deduplicated twin)."""
        key = cell_key(cell, salt=self.salt)
        if key not in self.results:
            raise ConfigurationError(
                f"cell {cell.policy!r}/{cell.label!r} was not part of this sweep"
            )
        return self.results[key]

    def merged_json(self) -> str:
        """Canonical bytes of the whole sweep, ordered by cell key.

        This is the bit-identity surface: the same grid must render the
        same string for every worker count and submission order.
        """
        merged = [
            {"key": key, "result": result_to_dict(self.results[key])}
            for key in sorted(self.results)
        ]
        return canonical_json(merged)


def _dedup(cells: list[SweepCell], salt: str) -> dict[str, SweepCell]:
    """Key → cell, first occurrence wins; identical cells collapse."""
    unique: dict[str, SweepCell] = {}
    for cell in cells:
        unique.setdefault(cell_key(cell, salt=salt), cell)
    return unique


def _cell_payload(cell: SweepCell) -> str:
    return canonical_json(
        {
            "config": config_to_dict(cell.config),
            "policy": cell.policy,
            "label": cell.label,
        }
    )


def _run_cell_json(payload: str) -> str:
    """Worker entry point: decode a cell, run it, return canonical JSON.

    Module-level (picklable by the spawn context) and free of any
    worker-local state: the run is a pure function of the payload, so
    which worker executes it — and in what order — cannot matter.
    """
    spec = json.loads(payload)
    config = config_from_dict(spec["config"])
    result = run_experiment(config, spec["policy"], label=spec["label"])
    return canonical_json(result_to_dict(result))


def run_sweep(
    cells: list[SweepCell] | tuple[SweepCell, ...],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> SweepReport:
    """Run every cell of a sweep grid; merge deterministically.

    Args:
        cells: The grid.  Identical cells (same config, policy and
            label) are deduplicated and simulated once.
        jobs: Worker-process count; 1 (the default) runs in-process.
            Worker count may only affect scheduling, never results.
        cache: Optional content-addressed result cache; hits skip the
            simulation entirely.

    Returns:
        A :class:`SweepReport` whose merged output is bit-identical to
        the ``jobs=1`` run of the same grid.

    Raises:
        ConfigurationError: on an invalid worker count, or when a cell
            enables observability while ``jobs > 1`` (live instruments
            cannot cross process boundaries, and parallel runs writing
            one trace path would race).
    """
    jobs = validate_jobs(jobs)
    if not cells:
        raise ConfigurationError("empty sweep grid")
    salt = cache.salt if cache is not None else CODE_VERSION
    unique = _dedup(list(cells), salt)
    stats = SweepStats(cells=len(unique))
    results: dict[str, ExperimentResult] = {}

    pending: list[str] = []
    for key in sorted(unique):
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            results[key] = cached
            stats.cache_hits += 1
        else:
            pending.append(key)

    if jobs > 1:
        for key in pending:
            if unique[key].config.obs.enabled:
                raise ConfigurationError(
                    "observability is enabled on a sweep cell but --jobs "
                    "> 1: live instruments cannot cross process "
                    "boundaries; run serially or disable obs"
                )

    if jobs == 1 or len(pending) <= 1:
        for key in pending:
            cell = unique[key]
            result = run_experiment(
                cell.config, cell.policy, label=cell.label
            )
            results[key] = result
            stats.computed += 1
            if cache is not None:
                cache.put(key, result)
    else:
        workers = min(jobs, len(pending))
        context = get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures: dict[Future[str], str] = {
                pool.submit(_run_cell_json, _cell_payload(unique[key])): key
                for key in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    key = futures[future]
                    result = result_from_dict(json.loads(future.result()))
                    results[key] = result
                    stats.computed += 1
                    stats.parallel += 1
                    if cache is not None:
                        cache.put(key, result)

    ordered = tuple(unique[key] for key in sorted(unique))
    return SweepReport(cells=ordered, results=results, stats=stats, salt=salt)
