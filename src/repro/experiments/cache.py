"""Content-addressed on-disk cache of experiment results.

A cached cell is addressed by the SHA-256 of its *inputs* — the
canonical JSON encoding of the :class:`~repro.experiments.common.
ExperimentConfig`, the policy name, the report label and two version
strings (see :func:`repro.experiments.serialize.config_hash`).  Because
every run is a pure function of those inputs (one root seed, no wall
clock, no ambient entropy — the reprolint RL1xx rules enforce this),
the address *is* the result: repeated sweeps, shared baselines and CI
re-runs skip any cell whose blob already exists.

Robustness contract:

* **Invalidation is structural.**  Changing any config field, the
  policy, the encoding schema or the :data:`CODE_VERSION` salt changes
  the address; stale blobs are never consulted, only orphaned.
* **Corruption degrades to a miss.**  A blob that fails to parse,
  fails dataclass validation or names an unknown type is deleted
  (best effort) and the cell recomputes.  The cache can never turn a
  bad disk into a wrong result.
* **Writes are atomic.**  Blobs land via temp-file + ``os.replace`` so
  a crashed writer leaves no half-written addressable blob; concurrent
  writers of the same address converge on identical bytes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.serialize import (
    SCHEMA_VERSION,
    canonical_json,
    config_hash,
    result_from_dict,
    result_to_dict,
)

__all__ = ["CODE_VERSION", "CacheStats", "ResultCache"]

#: The code-version salt folded into every cache address.  Bump this
#: whenever a change alters what :func:`run_experiment` computes for an
#: unchanged configuration (simulator semantics, metric definitions,
#: result fields) so every old blob silently misses.
CODE_VERSION = "2026.08-1"


@dataclass
class CacheStats:
    """Counters one :class:`ResultCache` accumulates over its lifetime."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat mapping for JSON payloads (CI warm-cache assertions)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
        }


class ResultCache:
    """A directory of content-addressed :class:`ExperimentResult` blobs.

    Args:
        root: Cache directory (created on first write).
        salt: Code-version salt folded into every address.
    """

    def __init__(self, root: str | Path, *, salt: str = CODE_VERSION) -> None:
        if not str(root):
            raise ConfigurationError("cache root must be a non-empty path")
        self.root = Path(root)
        self.salt = salt
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def key(
        self,
        config: ExperimentConfig,
        policy: str | None,
        label: str | None = None,
    ) -> str:
        """The content address of one experiment cell."""
        return config_hash(config, policy, salt=self.salt, label=label)

    def path_for(self, key: str) -> Path:
        """Blob path for ``key`` (two-level fan-out keeps dirs small)."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, key: str) -> ExperimentResult | None:
        """The cached result for ``key``, or ``None`` on miss.

        A blob that exists but cannot be decoded counts as *corrupt*:
        it is removed (best effort) and reported as a miss, so the
        caller recomputes and overwrites it.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        try:
            blob = json.loads(raw)
            if blob.get("schema") != SCHEMA_VERSION or blob.get("key") != key:
                raise ConfigurationError("cache blob envelope mismatch")
            result = result_from_dict(blob["result"])
        except (ValueError, KeyError, TypeError, AttributeError):
            # json.JSONDecodeError is a ValueError; ConfigurationError
            # too.  Anything else malformed lands in KeyError/TypeError.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass  # someone else removed it, or read-only media
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: ExperimentResult) -> None:
        """Store ``result`` under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "result": result_to_dict(result),
        }
        payload = canonical_json(blob)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        self.stats.writes += 1
