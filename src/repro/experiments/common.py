"""Experiment configuration and the single-run engine.

One :func:`run_experiment` call reproduces the paper's §V.C protocol end
to end, in a fresh simulated world:

1. **Training period** — the cluster runs the random job stream with all
   nodes at the highest power state and no management; the peak power is
   recorded (paper: 24 hours; configurable).
2. **Threshold learning** — ``P_peak`` ← training peak; ``P_H = 93% ·
   P_peak``, ``P_L = 84% · P_peak`` (margins configurable), and the
   provision threshold for ΔP×T is fixed at ``provision_fraction ×
   training peak``.
3. **Main window** — the stream continues for the evaluation duration
   (paper: 12 hours) either unmanaged (``policy=None``, the baseline) or
   under a :class:`~repro.core.manager.PowerManager` running the chosen
   policy each control cycle.
4. **Metrics** — every §V.C metric evaluated over the main window only.

Identical seeds give identical training periods and identical job
*sequences* across policies (the k-th generated job is the same tuple),
so cross-policy comparisons differ only in what the manager did — the
simulator's sharper version of the paper's "statistically identical
12-hour streams".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.engine import available_engines
from repro.core.manager import PowerManager
from repro.core.policies.base import SelectionPolicy, make_policy
from repro.core.sets import CandidateSelector, NodeSets
from repro.core.states import PowerState
from repro.core.thresholds import ThresholdController
from repro.errors import ConfigurationError
from repro.core.actuator import DvfsActuator
from repro.faults.corruption import CorruptionScenario
from repro.faults.degraded import DegradedModeConfig
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.scenario import FaultScenario
from repro.ha import HaConfig, HaController, HaStats, StateJournal
from repro.metrics.summary import RunMetrics
from repro.obs import Observability, ObsConfig
from repro.power.meter import SystemPowerMeter
from repro.power.hetero import make_power_model
from repro.power.supply import PowerProvision
from repro.power.thermal import ReliabilityTracker, ThermalModel
from repro.provision import (
    PowerTopology,
    ProvisionRuntime,
    ProvisionScenario,
    ProvisionStats,
)
from repro.scheduler.backfill import BackfillScheduler
from repro.scheduler.feeder import KeepQueueFilledFeeder
from repro.scheduler.scheduler import BatchScheduler
from repro.sim.random import RandomSource
from repro.telemetry.cost import ManagementCostModel
from repro.telemetry.integrity import IntegrityConfig
from repro.telemetry.recorder import TimeSeriesRecorder
from repro.workload.executor import JobExecutor
from repro.workload.generator import RandomJobGenerator
from repro.workload.job import Job

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment"]


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one experiment run.

    Defaults follow the paper's §V values where the paper gives them
    (128 nodes, T_g = 10 cycles, 7%/16% margins, five NPB applications
    via the generator) and practical simulated-time compressions where
    it does not (we cannot wait 24 wall-clock hours; ``runtime_scale``
    compresses job runtimes and the windows shrink proportionally).
    """

    seed: int = 2012
    num_nodes: int = 128
    #: Control-cycle period == telemetry sampling interval τ, seconds.
    control_period_s: float = 1.0
    #: Uniform compression of job nominal runtimes (1.0 = paper-scale).
    runtime_scale: float = 0.05
    #: Training-period length, simulated seconds (paper: 24 h).
    training_duration_s: float = 1800.0
    #: Main evaluation window, simulated seconds (paper: 12 h).
    run_duration_s: float = 3600.0
    #: ``T_g``, control cycles of steady green before upgrades (paper: 10).
    steady_green_cycles: int = 10
    #: Candidate-set size; None = all controllable nodes.
    candidate_size: int | None = None
    candidate_strategy: CandidateSelector = CandidateSelector.FIRST_K
    #: Privileged node ids (``A_uncontrollable``).
    privileged_nodes: tuple[int, ...] = ()
    #: Threshold margins (paper: 7% / 16% below ``P_peak``).
    margin_high: float = 0.07
    margin_low: float = 0.16
    #: ``t_p``: threshold re-adjustment period, control cycles.
    adjust_every_cycles: int = 600
    #: ΔP×T threshold ``P_th`` as a fraction of the training peak.  It
    #: sits just *below* the P_L band (84%), so even a well-capped run —
    #: which hovers under P_L and transiently crosses it — retains some
    #: overspend; that is what makes the ΔP×T reductions land near the
    #: paper's 73%/66% rather than a trivial 100%.
    provision_fraction: float = 0.82
    #: Gaussian meter noise (fraction of reading); paper treats the
    #: system meter as accurate, so default 0.
    meter_noise_fraction: float = 0.0
    #: Cluster-wide correlated load-modulation strength (see
    #: :class:`repro.workload.executor.JobExecutor`); this is what makes
    #: power show occasional excursions above the thresholds.
    modulation_std: float = 0.12
    #: Modulation correlation time, seconds; None derives it from the
    #: runtime scale (excursions last minutes at paper scale).
    modulation_tau_s: float | None = None
    #: Track per-node temperatures and expected failures during the main
    #: window (the §I.A reliability motivation, quantified via the RC
    #: thermal model and Feng's doubling law).
    track_thermal: bool = False
    #: Batch scheduler flavour: "fcfs" (the paper's §V.C launcher) or
    #: "backfill" (EASY backfill; an ablation of the workload substrate).
    scheduler: str = "fcfs"
    #: Priority classes the generator draws uniformly (higher = more
    #: important); only the ``sla`` policy consults priorities.
    priority_choices: tuple[int, ...] = (0,)
    #: Management-cost model for Figure 5 accounting.
    cost_model: ManagementCostModel = field(default_factory=ManagementCostModel)
    #: Monitoring-plane fault scenario; the default injects nothing and
    #: reproduces the fault-free run bit for bit.
    faults: FaultScenario = field(default_factory=FaultScenario.none)
    #: Degraded-mode fail-safe ladder thresholds (used only when
    #: ``faults`` injects something).
    degraded: DegradedModeConfig = field(default_factory=DegradedModeConfig)
    #: Sensor-corruption scenario (telemetry that arrives but lies); the
    #: default corrupts nothing and reproduces the clean run bit for bit.
    corruption: CorruptionScenario = field(default_factory=CorruptionScenario.none)
    #: Telemetry-integrity defense (validation + trust/quarantine +
    #: meter cross-check); ``None`` disables it, which is the undefended
    #: setting corruption benchmarks compare against.
    integrity: IntegrityConfig | None = None
    #: Controller crash-recovery layer (journal + failover + fencing);
    #: disabled by default, which reproduces the single-manager run bit
    #: for bit.
    ha: HaConfig = field(default_factory=HaConfig)
    #: Observability layer (:mod:`repro.obs`): cycle tracing, metric
    #: registry, flight recorder.  Off by default; enabling it never
    #: changes any capping decision, only records them.
    obs: ObsConfig = field(default_factory=ObsConfig)
    #: Power-delivery fault scenario (:mod:`repro.provision`); the
    #: default configures a healthy delivery path and — unless
    #: ``attach_provision`` forces the topology on — attaches nothing,
    #: reproducing the seed run bit for bit.
    provision: ProvisionScenario = field(default_factory=ProvisionScenario.none)
    #: Attach the delivery topology/runtime even when the scenario is
    #: healthy (used to prove the healthy attach changes no decision).
    attach_provision: bool = False
    #: Hot-path engine: "vector" (SoA production path) or "object" (the
    #: paper-literal per-node reference).  Bit-identical by construction;
    #: the differential equivalence suite enforces it.
    engine: str = "vector"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.engine not in available_engines():
            raise ConfigurationError(
                f"engine must be one of {available_engines()}, got {self.engine!r}"
            )
        if self.control_period_s <= 0:
            raise ConfigurationError("control period must be positive")
        if self.runtime_scale <= 0:
            raise ConfigurationError("runtime_scale must be positive")
        if self.training_duration_s <= 0 or self.run_duration_s <= 0:
            raise ConfigurationError("durations must be positive")
        if self.steady_green_cycles < 1:
            raise ConfigurationError("T_g must be >= 1")
        if not 0.0 < self.provision_fraction < 1.5:
            raise ConfigurationError("provision_fraction out of range")
        if self.modulation_std < 0:
            raise ConfigurationError("modulation_std must be non-negative")
        if self.modulation_tau_s is not None and self.modulation_tau_s <= 0:
            raise ConfigurationError("modulation_tau_s must be positive")
        if self.scheduler not in ("fcfs", "backfill"):
            raise ConfigurationError(
                f"scheduler must be 'fcfs' or 'backfill', got {self.scheduler!r}"
            )
        if not self.ha.enabled and (
            self.faults.controller_crash_rate > 0.0 or self.ha.crash_at_cycles
        ):
            raise ConfigurationError(
                "controller crashes are configured but the HA layer is "
                "disabled: enable ExperimentConfig.ha or the run would "
                "simply lose its manager"
            )

    @property
    def effective_modulation_tau_s(self) -> float:
        """Modulation correlation time: explicit, or scaled from runtime.

        Derived as 400 s × runtime_scale clamped to [20 s, 400 s]:
        excursions last minutes at paper scale and shrink with the
        compression so a compressed run sees a similar *number* of
        excursions per job."""
        if self.modulation_tau_s is not None:
            return self.modulation_tau_s
        return float(min(400.0, max(20.0, 400.0 * self.runtime_scale)))

    @classmethod
    def quick(cls, **overrides) -> "ExperimentConfig":
        """A seconds-scale configuration for tests and smoke runs."""
        base = cls(
            runtime_scale=0.02,
            training_duration_s=600.0,
            run_duration_s=900.0,
            adjust_every_cycles=300,
        )
        return replace(base, **overrides)

    @classmethod
    def calibrated(cls, **overrides) -> "ExperimentConfig":
        """The configuration the benchmark suite runs: 2 h training +
        1.5 h evaluation at quarter-scale runtimes.  This is the smallest
        setting whose results sit inside the paper's reported bands (see
        EXPERIMENTS.md); ~15 s of wall clock per run."""
        base = cls(
            runtime_scale=0.25,
            training_duration_s=7200.0,
            run_duration_s=5400.0,
        )
        return replace(base, **overrides)

    @classmethod
    def paper(cls, **overrides) -> "ExperimentConfig":
        """The paper's full protocol (24 h training + 12 h run at full
        runtimes).  Hours of simulated time — minutes of wall clock."""
        base = cls(
            runtime_scale=1.0,
            training_duration_s=24 * 3600.0,
            run_duration_s=12 * 3600.0,
        )
        return replace(base, **overrides)


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one run produced.

    Attributes:
        label: Policy name or "uncapped".
        config: The configuration that produced the run.
        training_peak_w: Peak power recorded during training.
        provision_w: ``P_th`` used by ΔP×T.
        times: Main-window sample times (one per control period).
        power_w: Ground-truth total power at those times.
        finished_jobs: Jobs that completed inside the main window.
        metrics: The §V.C metric bundle for the main window.
        p_low_w / p_high_w: Thresholds in force at the end of the run.
        state_cycles: Cycles spent green/yellow/red (empty when
            unmanaged).
        management_cpu: Modelled Figure 5 management-node utilisation
            (0 when unmanaged).
        commands_sent: DVFS commands issued (0 when unmanaged).
        entered_red: Whether any cycle classified red.
        peak_temperature_c: Hottest node temperature over the main
            window (None unless ``track_thermal``).
        expected_failures: Integrated expected node-failure count over
            the main window (None unless ``track_thermal``).
        fault_stats: Aggregate fault/degraded-mode accounting (None
            unless the run injected faults).
        degraded_flags: Per-cycle degraded-sensing flag series aligned
            with ``times`` (None unless the run injected faults).
        ha_stats: Crash/failover accounting (None unless the run had
            the HA layer enabled).
        controlled_flags: Per-cycle flag series aligned with ``times``:
            1.0 when a manager completed the cycle, 0.0 for controller
            crash/downtime cycles (None unless HA was enabled).
        true_power_w: Ground-truth total power aligned with ``times``
            (None unless the run configured corruption or the integrity
            defense); for those runs ``power_w`` is what the controller
            *acted on*, and the gap between the two is graded by
            :func:`repro.metrics.integrity.estimate_error_w_under_corruption`.
        observability: The run's :class:`~repro.obs.Observability`
            facade — spans, metrics and flight dumps, already exported
            to any configured paths (None unless ``config.obs`` enabled
            something).
        provision_stats: Power-delivery accounting — capacity events,
            breaker trips, emergency-ladder actions (None unless the
            run attached a provision runtime).
    """

    label: str
    config: ExperimentConfig
    training_peak_w: float
    provision_w: float
    times: np.ndarray
    power_w: np.ndarray
    finished_jobs: list[Job]
    metrics: RunMetrics
    p_low_w: float
    p_high_w: float
    state_cycles: dict[str, int]
    management_cpu: float
    commands_sent: int
    entered_red: bool
    peak_temperature_c: float | None = None
    expected_failures: float | None = None
    fault_stats: FaultStats | None = None
    degraded_flags: np.ndarray | None = None
    ha_stats: HaStats | None = None
    controlled_flags: np.ndarray | None = None
    true_power_w: np.ndarray | None = None
    observability: Observability | None = None
    provision_stats: ProvisionStats | None = None


class _World:
    """A fresh simulated world: cluster + scheduler + stream + model."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        #: The run's observability facade (None when everything is off,
        #: so un-instrumented paths stay exactly as before).
        self.obs: Observability | None = (
            Observability(config.obs) if config.obs.enabled else None
        )
        self.rng = RandomSource(seed=config.seed)
        self.cluster = Cluster.tianhe_1a(
            num_nodes=config.num_nodes, engine=config.engine
        )
        if config.privileged_nodes:
            self.cluster.set_privileged_nodes(np.asarray(config.privileged_nodes))
        self.model = make_power_model(self.cluster)
        self.generator = RandomJobGenerator(
            self.rng.stream("workload.generator"),
            runtime_scale=config.runtime_scale,
            priority_choices=config.priority_choices,
        )
        generator = self.generator
        executor = JobExecutor(
            self.cluster.state,
            self.rng.stream("workload.executor"),
            modulation_std=config.modulation_std,
            modulation_tau_s=config.effective_modulation_tau_s,
            engine=self.cluster.engine,
        )
        scheduler_cls = (
            BackfillScheduler if config.scheduler == "backfill" else BatchScheduler
        )
        self.scheduler = scheduler_cls(
            self.cluster, executor, KeepQueueFilledFeeder(generator), obs=self.obs
        )
        self.now = 0.0

    def tick(self) -> float:
        """Advance one control period; returns the new simulated time."""
        dt = self.config.control_period_s
        self.now += dt
        self.scheduler.tick(self.now, dt)
        return self.now

    def true_power(self) -> float:
        return self.model.system_power(self.cluster.state)


def _run_training(world: _World) -> float:
    """Run the unmanaged training period; return the recorded peak."""
    cfg = world.config
    peak = 0.0
    end = cfg.training_duration_s
    while world.now + cfg.control_period_s <= end + 1e-9:
        world.tick()
        peak = max(peak, world.true_power())
    return peak


def run_experiment(
    config: ExperimentConfig,
    policy: str | SelectionPolicy | None,
    label: str | None = None,
    manager_factory: type[PowerManager] | None = None,
) -> ExperimentResult:
    """Run the full §V.C protocol once.

    Args:
        config: The experiment configuration.
        policy: Policy name (see :func:`repro.core.policies.make_policy`),
            a pre-built policy instance, or ``None`` for the unmanaged
            baseline.
        label: Report label; defaults to the policy name or "uncapped".
        manager_factory: Manager class to instantiate (defaults to the
            paper's :class:`~repro.core.manager.PowerManager`); pass a
            baseline controller from :mod:`repro.core.baselines` to run
            a related-work comparison on the identical protocol.

    Returns:
        The run's :class:`ExperimentResult`.
    """
    world = _World(config)
    training_peak = _run_training(world)
    provision_w = config.provision_fraction * training_peak

    # Sanity: the provision must satisfy the §II.D assumptions.
    PowerProvision(capability_w=provision_w).check_assumptions(world.cluster)

    manager: PowerManager | None = None
    ha_controller: HaController | None = None
    if policy is not None:
        if isinstance(policy, str):
            kwargs = {}
            if policy == "random":
                kwargs["rng"] = world.rng.stream("policy.random")
            elif policy == "sla":
                kwargs["priority_of"] = world.generator.priority_of
            policy_obj = make_policy(policy, **kwargs)
        else:
            policy_obj = policy
        sets = (
            NodeSets(world.cluster)
            if config.candidate_size is None
            else NodeSets.select(
                world.cluster,
                config.candidate_size,
                config.candidate_strategy,
                rng=world.rng.stream("candidate.selection"),
            )
        )
        meter = SystemPowerMeter(
            world.model,
            world.cluster.state,
            noise_std_fraction=config.meter_noise_fraction,
            rng=world.rng.stream("meter.noise"),
        )
        thresholds = ThresholdController.from_training(
            training_peak,
            margin_high=config.margin_high,
            margin_low=config.margin_low,
            adjust_every_cycles=config.adjust_every_cycles,
        )
        factory = PowerManager if manager_factory is None else manager_factory
        manager_kwargs: dict[str, Any] = {"obs": world.obs}
        if config.faults.enabled or config.corruption.enabled:
            manager_kwargs["fault_injector"] = FaultInjector(
                config.faults,
                world.rng,
                num_nodes=config.num_nodes,
                corruption=(
                    config.corruption if config.corruption.enabled else None
                ),
                obs=world.obs,
            )
            manager_kwargs["degraded"] = config.degraded
        if config.integrity is not None:
            manager_kwargs["integrity"] = config.integrity
        if config.provision.enabled or config.attach_provision:
            topology = PowerTopology.for_cluster(
                world.cluster,
                nodes_per_rack=config.provision.nodes_per_rack,
                feeds=config.provision.feeds,
                feed_headroom=config.provision.feed_headroom,
                rack_headroom=config.provision.rack_headroom,
            )
            # §II.D, branch edition: a rack that overloads its breaker
            # even fully throttled can never be defended.
            topology.check_assumptions(world.cluster)
            manager_kwargs["provision"] = ProvisionRuntime(
                topology,
                config.provision,
                rng=world.rng,
                obs=world.obs,
            )
            manager_kwargs["scheduler"] = world.scheduler
        if config.ha.enabled:
            # HA wiring: the actuator and journal outlive any single
            # manager incarnation (in-flight commands are in the
            # network; the journal is the recovery source), and every
            # incarnation appends to the same recorder so the series
            # stay continuous across failovers.  Each incarnation gets
            # a *fresh* threshold controller and collector — their
            # learned state comes from the journal, not the factory.
            journal = StateJournal(config.ha.journal_compact_every)
            actuator = DvfsActuator(
                world.cluster.state,
                manager_kwargs.get("fault_injector"),
                obs=world.obs,
            )
            recorder = TimeSeriesRecorder()

            def _make_manager() -> PowerManager:
                return factory(
                    world.cluster,
                    sets,
                    meter,
                    ThresholdController.from_training(
                        training_peak,
                        margin_high=config.margin_high,
                        margin_low=config.margin_low,
                        adjust_every_cycles=config.adjust_every_cycles,
                    ),
                    policy_obj,
                    steady_green_cycles=config.steady_green_cycles,
                    cost_model=config.cost_model,
                    recorder=recorder,
                    actuator=actuator,
                    journal=journal,
                    **manager_kwargs,
                )

            manager = _make_manager()
            ha_controller = HaController(
                manager, _make_manager, journal, config.ha, obs=world.obs
            )
        else:
            ha_controller = None
            manager = factory(
                world.cluster,
                sets,
                meter,
                thresholds,
                policy_obj,
                steady_green_cycles=config.steady_green_cycles,
                cost_model=config.cost_model,
                **manager_kwargs,
            )

    # Main window.
    window_start = world.now
    window_end = window_start + config.run_duration_s
    jobs_before = {j.job_id for j in world.scheduler.finished_jobs}
    times: list[float] = []
    power: list[float] = []
    thermal: ThermalModel | None = None
    reliability: ReliabilityTracker | None = None
    if config.track_thermal:
        thermal = ThermalModel(config.num_nodes)
        thermal.settle(world.model.node_power(world.cluster.state))
        reliability = ReliabilityTracker()
    controlled: list[float] = []
    track_truth = config.corruption.enabled or config.integrity is not None
    truth: list[float] = []
    while world.now + config.control_period_s <= window_end + 1e-9:
        now = world.tick()
        if track_truth:
            truth.append(world.true_power())
        if ha_controller is not None:
            report = ha_controller.control_cycle(now)
            times.append(now)
            if report is None:
                # Controller down: nobody sensed, so the recorded value
                # is the ground truth the dead manager never saw.
                power.append(world.true_power())
                controlled.append(0.0)
            else:
                power.append(report.power_w)
                controlled.append(1.0)
        elif manager is not None:
            report = manager.control_cycle(now)
            times.append(now)
            power.append(report.power_w)
        else:
            times.append(now)
            power.append(world.true_power())
        if thermal is not None:
            temps = thermal.step(
                world.model.node_power(world.cluster.state),
                config.control_period_s,
            )
            assert reliability is not None
            reliability.accumulate(temps, config.control_period_s)

    if world.obs is not None:
        # End-of-run trigger: the flight recorder's last-N window, then
        # every configured output file.
        world.obs.trip("run_end", world.now)
        world.obs.export()

    finished = [
        j
        for j in world.scheduler.finished_jobs
        if j.job_id not in jobs_before
    ]
    t_arr = np.asarray(times)
    p_arr = np.asarray(power)
    truth_arr = np.asarray(truth) if track_truth else None
    run_label = label or (
        "uncapped" if policy is None else getattr(manager.policy, "name", "custom")
    )
    # Corruption runs are graded on ground truth: ``p_arr`` is whatever
    # the (possibly lied-to) controller acted on, and a byzantine meter
    # would otherwise grade its own lie as a perfect run.
    metrics = RunMetrics.evaluate(
        run_label,
        t_arr,
        p_arr if truth_arr is None else truth_arr,
        finished,
        provision_w,
    )
    peak_temp = reliability.peak_temperature_c if reliability is not None else None
    failures = reliability.expected_failures if reliability is not None else None

    if manager is not None:
        if ha_controller is not None:
            # Failovers may have replaced the primary; report the
            # incarnation that finished the run (its counters include
            # everything the journal carried across takeovers).
            manager = ha_controller.manager
        state_cycles = {
            s.value: manager.state_count(s) for s in PowerState
        }
        fault_stats = manager.fault_report()
        degraded_flags = None
        if manager.fault_injector is not None and "degraded_sensing" in manager.recorder:
            degraded_flags = manager.recorder.values("degraded_sensing")
            if len(degraded_flags) != len(t_arr):
                # Downtime cycles record no sensing flags; the series
                # cannot be aligned with the run's time axis.
                degraded_flags = None
        ha_stats = ha_controller.stats() if ha_controller is not None else None
        controlled_flags = (
            np.asarray(controlled) if ha_controller is not None else None
        )
        return ExperimentResult(
            label=run_label,
            config=config,
            training_peak_w=training_peak,
            provision_w=provision_w,
            times=t_arr,
            power_w=p_arr,
            finished_jobs=finished,
            metrics=metrics,
            p_low_w=manager.thresholds.p_low,
            p_high_w=manager.thresholds.p_high,
            state_cycles=state_cycles,
            management_cpu=manager.collector.management_cpu_utilization(),
            commands_sent=manager.actuator.commands_sent,
            entered_red=manager.ever_entered_red(),
            peak_temperature_c=peak_temp,
            expected_failures=failures,
            fault_stats=fault_stats,
            degraded_flags=degraded_flags,
            ha_stats=ha_stats,
            controlled_flags=controlled_flags,
            true_power_w=np.asarray(truth) if track_truth else None,
            observability=world.obs,
            provision_stats=manager.provision_report(),
        )
    return ExperimentResult(
        label=run_label,
        config=config,
        training_peak_w=training_peak,
        provision_w=provision_w,
        times=t_arr,
        power_w=p_arr,
        finished_jobs=finished,
        metrics=metrics,
        p_low_w=(1.0 - config.margin_low) * training_peak,
        p_high_w=(1.0 - config.margin_high) * training_peak,
        state_cycles={},
        management_cpu=0.0,
        commands_sent=0,
        entered_red=False,
        peak_temperature_c=peak_temp,
        expected_failures=failures,
        true_power_w=np.asarray(truth) if track_truth else None,
        observability=world.obs,
    )
