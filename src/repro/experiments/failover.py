"""Controller-crash failover experiment: crashed run vs uncrashed twin.

The question the HA layer must answer quantitatively: *what does a
controller crash cost, and does journal recovery put the control loop
back on its pre-crash trajectory?*  :func:`run_failover` runs the same
seeded world twice — once with the configured controller crashes
(scripted ``crash_at_cycles`` and/or the stochastic
``controller_crash_rate``), once with crashes stripped — and grades the
crashed run against its uncrashed twin:

* ``downtime_seconds`` — wall clock with no manager acting
  (:func:`repro.metrics.faults.controller_downtime_seconds`);
* ``failovers`` — takeovers completed, recomputed from the recorded
  controlled-flag series and cross-checked against the HA layer's own
  :class:`~repro.ha.failover.HaStats`;
* ``divergence_w`` — ``max |P − P_ref|`` from the first takeover onward
  (:func:`repro.metrics.faults.recovery_divergence_w`): how far the
  recovered controller's trajectory drifted from the one the crash
  interrupted.  Downtime itself moves the machine (nodes run uncapped,
  jobs progress differently), so this is a property of the *whole* HA
  design — journal fidelity, downtime length, recovery hold — not of
  the journal alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.sweep import SweepCell, run_sweep
from repro.ha import HaStats
from repro.metrics.faults import (
    controller_downtime_seconds,
    failover_count,
    recovery_divergence_w,
)

__all__ = ["FailoverResult", "run_failover"]


@dataclass(frozen=True)
class FailoverResult:
    """One crashed run graded against its uncrashed twin."""

    crashed: ExperimentResult
    reference: ExperimentResult
    ha_stats: HaStats
    downtime_seconds: float
    failovers: int
    divergence_w: float
    #: Simulated time of the first takeover (None if nothing crashed).
    first_takeover_time: float | None


def run_failover(
    config: ExperimentConfig,
    policy: str,
    label: str | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> FailoverResult:
    """Run the crashed/uncrashed pair and grade the recovery.

    Args:
        config: An HA-enabled configuration with at least one crash
            source (``ha.crash_at_cycles`` or
            ``faults.controller_crash_rate``).
        policy: Target-selection policy name for both runs.
        label: Report label for the crashed run (part of its sweep-cell
            identity, so differently-labelled reruns cache separately).
        jobs: Worker processes for the pair (bit-identical to serial).
        cache: Optional content-addressed result cache.

    Raises:
        ConfigurationError: if the configuration cannot crash — the
            comparison would be vacuous.
    """
    if not config.ha.enabled:
        raise ConfigurationError("run_failover needs ExperimentConfig.ha.enabled")
    if not config.ha.crash_at_cycles and config.faults.controller_crash_rate <= 0:
        raise ConfigurationError(
            "run_failover needs a crash source: ha.crash_at_cycles or "
            "faults.controller_crash_rate"
        )
    reference_config = replace(
        config,
        ha=replace(config.ha, crash_at_cycles=()),
        faults=replace(config.faults, controller_crash_rate=0.0),
    )
    crashed_cell = SweepCell(config, policy, label=label)
    reference_cell = SweepCell(reference_config, policy, label="reference")
    report = run_sweep([crashed_cell, reference_cell], jobs=jobs, cache=cache)
    crashed = report.result_for(crashed_cell)
    reference = report.result_for(reference_cell)
    assert crashed.ha_stats is not None and crashed.controlled_flags is not None

    downtime = controller_downtime_seconds(crashed.times, crashed.controlled_flags)
    failovers = failover_count(crashed.controlled_flags)
    up = crashed.controlled_flags > 0.0
    takeover_idx = np.flatnonzero(~up[:-1] & up[1:]) + 1
    first_takeover = (
        float(crashed.times[takeover_idx[0]]) if len(takeover_idx) else None
    )
    divergence = (
        recovery_divergence_w(
            crashed.times, crashed.power_w, reference.power_w, first_takeover
        )
        if first_takeover is not None
        else 0.0
    )
    return FailoverResult(
        crashed=crashed,
        reference=reference,
        ha_stats=crashed.ha_stats,
        downtime_seconds=downtime,
        failovers=failovers,
        divergence_w=divergence,
        first_takeover_time=first_takeover,
    )
