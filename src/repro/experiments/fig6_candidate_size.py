"""Figure 6: power capping effect vs candidate-set size.

For each size ``k`` of ``A_candidate`` and each policy (the paper sweeps
MPC and HRI), run the full protocol and report the maximal power and
ΔP×T *normalised against the unmanaged run* ("the values when the system
is executed without any power management (i.e. when the size of
A_candidate is 0)").  The paper's observations this harness must
reproduce:

* both normalised metrics decrease monotonically (up to noise) with k;
* the improvement saturates — beyond ~48 of 128 nodes, additional
  candidates return little extra effect;
* the MPC and HRI trend curves are similar.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
)
from repro.experiments.sweep import SweepCell, baseline_cell, run_sweep
from repro.metrics.summary import compare_runs

__all__ = ["Fig6Point", "Fig6Result", "run_fig6", "DEFAULT_SIZES"]

#: Candidate sizes of the paper's sweep (x-axis of Figure 6).
DEFAULT_SIZES: tuple[int, ...] = (0, 8, 16, 32, 48, 64, 96, 128)


@dataclass(frozen=True)
class Fig6Point:
    """One (policy, size) cell of Figure 6 (values normalised to size 0)."""

    policy: str
    size: int
    p_max_ratio: float
    overspend_ratio: float
    performance: float


@dataclass(frozen=True)
class Fig6Result:
    """The full Figure 6 sweep."""

    baseline: ExperimentResult
    points: list[Fig6Point]

    def series(self, policy: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(sizes, p_max_ratio, overspend_ratio)`` arrays for ``policy``."""
        rows = sorted(
            (p for p in self.points if p.policy == policy), key=lambda p: p.size
        )
        if not rows:
            raise ConfigurationError(f"no points for policy {policy!r}")
        return (
            np.asarray([p.size for p in rows]),
            np.asarray([p.p_max_ratio for p in rows]),
            np.asarray([p.overspend_ratio for p in rows]),
        )

    def knee_size(self, policy: str, tolerance: float = 0.02) -> int:
        """Smallest size whose ΔP×T ratio is within ``tolerance`` of the
        best (largest-size) ratio — where adding candidates stops paying.
        """
        sizes, _, overspend = self.series(policy)
        best = overspend[-1]
        for size, value in zip(sizes, overspend):
            if value <= best + tolerance:
                return int(size)
        return int(sizes[-1])


def run_fig6(
    config: ExperimentConfig,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    policies: tuple[str, ...] = ("mpc", "hri"),
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> Fig6Result:
    """Run the Figure 6 sweep.

    Size 0 is the unmanaged baseline (ratios exactly 1 by definition);
    it is one shared sweep cell — the same cell fig7 and the ablations
    use — simulated once and shared across policies.  ``jobs`` fans the
    grid over worker processes (results are bit-identical to serial);
    ``cache`` replays unchanged cells from disk.
    """
    if 0 not in sizes:
        sizes = (0,) + tuple(sizes)
    base = baseline_cell(config)
    managed: dict[tuple[str, int], SweepCell] = {}
    for policy in policies:
        for size in sorted(s for s in sizes if s > 0):
            managed[(policy, size)] = SweepCell(
                replace(config, candidate_size=size), policy
            )
    report = run_sweep(
        [base, *managed.values()], jobs=jobs, cache=cache
    )
    baseline = report.result_for(base)
    points: list[Fig6Point] = []
    for policy in policies:
        points.append(
            Fig6Point(
                policy=policy,
                size=0,
                p_max_ratio=1.0,
                overspend_ratio=1.0,
                performance=baseline.metrics.performance,
            )
        )
        for size in sorted(s for s in sizes if s > 0):
            result = report.result_for(managed[(policy, size)])
            comparison = compare_runs(result.metrics, baseline.metrics)
            points.append(
                Fig6Point(
                    policy=policy,
                    size=size,
                    p_max_ratio=comparison.p_max_ratio,
                    overspend_ratio=comparison.overspend_ratio,
                    performance=comparison.performance,
                )
            )
    return Fig6Result(baseline=baseline, points=points)
