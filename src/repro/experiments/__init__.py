"""Experiment harnesses: one module per paper figure, plus ablations.

* :mod:`repro.experiments.common` — configuration and the single-run
  engine (training period → threshold learning → managed/unmanaged main
  window → metrics);
* :mod:`repro.experiments.fig5_scalability` — central-manager cost vs
  candidate-set size (Figure 5);
* :mod:`repro.experiments.fig6_candidate_size` — capping effect vs
  ``|A_candidate|`` for MPC and HRI (Figure 6);
* :mod:`repro.experiments.fig7_policies` — the headline policy
  comparison (Figure 7 and §V.D's text numbers);
* :mod:`repro.experiments.ablations` — T_g, threshold margins, sampling
  interval and the full policy zoo;
* :mod:`repro.experiments.failover` — controller-crash recovery graded
  against an uncrashed twin run (the :mod:`repro.ha` layer's report
  card);
* :mod:`repro.experiments.sweep` — the deterministic parallel campaign
  layer every harness above runs through (grid → worker processes →
  bit-identical merge);
* :mod:`repro.experiments.cache` / :mod:`repro.experiments.serialize` —
  the content-addressed result cache and the canonical JSON round-trip
  underneath it.
"""

from repro.experiments.cache import CODE_VERSION, CacheStats, ResultCache
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.experiments.failover import FailoverResult, run_failover
from repro.experiments.fig5_scalability import Fig5Result, run_fig5
from repro.experiments.fig6_candidate_size import Fig6Point, Fig6Result, run_fig6
from repro.experiments.fig7_policies import Fig7Result, PolicyOutcome, run_fig7
from repro.experiments.serialize import (
    config_from_dict,
    config_hash,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.sweep import (
    SweepCell,
    SweepReport,
    SweepStats,
    baseline_cell,
    run_sweep,
)

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "ExperimentConfig",
    "ExperimentResult",
    "FailoverResult",
    "Fig5Result",
    "Fig6Point",
    "Fig6Result",
    "Fig7Result",
    "PolicyOutcome",
    "ResultCache",
    "SweepCell",
    "SweepReport",
    "SweepStats",
    "baseline_cell",
    "config_from_dict",
    "config_hash",
    "config_to_dict",
    "result_from_dict",
    "result_to_dict",
    "run_experiment",
    "run_failover",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_sweep",
]
