"""Experiment harnesses: one module per paper figure, plus ablations.

* :mod:`repro.experiments.common` — configuration and the single-run
  engine (training period → threshold learning → managed/unmanaged main
  window → metrics);
* :mod:`repro.experiments.fig5_scalability` — central-manager cost vs
  candidate-set size (Figure 5);
* :mod:`repro.experiments.fig6_candidate_size` — capping effect vs
  ``|A_candidate|`` for MPC and HRI (Figure 6);
* :mod:`repro.experiments.fig7_policies` — the headline policy
  comparison (Figure 7 and §V.D's text numbers);
* :mod:`repro.experiments.ablations` — T_g, threshold margins, sampling
  interval and the full policy zoo;
* :mod:`repro.experiments.failover` — controller-crash recovery graded
  against an uncrashed twin run (the :mod:`repro.ha` layer's report
  card).
"""

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.experiments.failover import FailoverResult, run_failover
from repro.experiments.fig5_scalability import Fig5Result, run_fig5
from repro.experiments.fig6_candidate_size import Fig6Point, Fig6Result, run_fig6
from repro.experiments.fig7_policies import Fig7Result, PolicyOutcome, run_fig7

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "FailoverResult",
    "Fig5Result",
    "Fig6Point",
    "Fig6Result",
    "Fig7Result",
    "PolicyOutcome",
    "run_experiment",
    "run_failover",
    "run_fig5",
    "run_fig6",
    "run_fig7",
]
