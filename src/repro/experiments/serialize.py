"""Stable JSON serialization of experiment configs and results.

The sweep runner (:mod:`repro.experiments.sweep`) and the result cache
(:mod:`repro.experiments.cache`) both need two guarantees a plain
``dataclasses.asdict`` cannot give:

1. **Canonical bytes.**  The same :class:`ExperimentConfig` must always
   produce the same byte sequence, because those bytes are hashed into
   the content address of a cached result.  :func:`canonical_json`
   therefore sorts keys, strips whitespace and relies on Python's
   shortest-round-trip float ``repr`` (exact for every finite double).

2. **Faithful round-trip.**  A result that crossed a process boundary
   or came back from the cache must be indistinguishable — field for
   field, bit for bit — from the object the in-process run produced.
   Every value is encoded with an explicit type tag and reconstructed
   through the real constructor, so ``__post_init__`` validation runs
   again on the way in (a corrupted blob fails loudly instead of
   producing a half-valid result).

The one deliberate exception is :class:`~repro.obs.Observability`: the
facade holds live instruments (rebindable callbacks, ring buffers) that
have no meaningful serialized form, so :func:`result_to_dict` records it
as ``None``.  Sweeps are therefore defined over *un-instrumented* runs;
per-run observability stays a single-process debugging tool.

Encoding scheme (all tags are reserved keys that cannot appear in our
plain payload dicts):

* dataclass → ``{"__dc__": name, "fields": {...}}``
* enum → ``{"__enum__": name, "value": ...}``
* tuple → ``{"__tuple__": [...]}``
* numpy array → ``{"__nd__": dtype, "shape": [...], "data": [...]}``
* :class:`~repro.workload.phases.PhaseSchedule` →
  ``{"__ps__": [phases...]}`` (the one registered non-dataclass)
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

import numpy as np

from repro.core.sets import CandidateSelector
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.faults.corruption import CorruptionScenario
from repro.faults.degraded import DegradedModeConfig
from repro.faults.injector import FaultStats
from repro.faults.scenario import FaultScenario
from repro.ha.config import HaConfig
from repro.ha.failover import HaStats
from repro.metrics.summary import RunMetrics
from repro.obs.config import ObsConfig
from repro.provision.runtime import ProvisionStats
from repro.provision.scenario import ProvisionScenario
from repro.telemetry.cost import ManagementCostModel
from repro.telemetry.integrity import IntegrityConfig
from repro.workload.applications import ApplicationProfile
from repro.workload.job import Job, JobState
from repro.workload.phases import Phase, PhaseSchedule

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "config_from_dict",
    "config_hash",
    "config_to_dict",
    "from_jsonable",
    "result_from_dict",
    "result_to_dict",
    "to_jsonable",
]

#: Bumped whenever the encoding itself changes shape.  Part of every
#: cache key, so stale blobs from an older schema can never be decoded
#: as current results — they simply miss.
SCHEMA_VERSION = 1

#: Dataclasses the decoder may instantiate.  An explicit allow-list:
#: a blob naming any other type is corrupt by definition.
_DATACLASS_REGISTRY: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ApplicationProfile,
        ExperimentConfig,
        ExperimentResult,
        CorruptionScenario,
        DegradedModeConfig,
        FaultScenario,
        FaultStats,
        HaConfig,
        HaStats,
        IntegrityConfig,
        Job,
        ManagementCostModel,
        ObsConfig,
        Phase,
        ProvisionScenario,
        ProvisionStats,
        RunMetrics,
    )
}

_ENUM_REGISTRY: dict[str, type[enum.Enum]] = {
    cls.__name__: cls for cls in (CandidateSelector, JobState)
}

_TAGS = ("__dc__", "__enum__", "__tuple__", "__nd__", "__ps__")


def _bad(value: object, detail: str) -> ConfigurationError:
    return ConfigurationError(
        f"cannot serialize/deserialize {type(value).__name__}: {detail}"
    )


def to_jsonable(value: Any) -> Any:
    """Encode ``value`` into a JSON-compatible tree of tagged nodes."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return {
            "__nd__": str(value.dtype),
            "shape": list(value.shape),
            "data": [to_jsonable(v) for v in value.ravel().tolist()],
        }
    if isinstance(value, enum.Enum):
        name = type(value).__name__
        if name not in _ENUM_REGISTRY:
            raise _bad(value, "enum type is not registered")
        return {"__enum__": name, "value": to_jsonable(value.value)}
    if isinstance(value, PhaseSchedule):
        return {"__ps__": [to_jsonable(p) for p in value.phases]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _DATACLASS_REGISTRY:
            raise _bad(value, "dataclass type is not registered")
        fields = {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dc__": name, "fields": fields}
    if isinstance(value, tuple):
        return {"__tuple__": [to_jsonable(v) for v in value]}
    if isinstance(value, list):
        return [to_jsonable(v) for v in value]
    if isinstance(value, dict):
        encoded: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise _bad(value, f"non-string dict key {key!r}")
            if key in _TAGS:
                raise _bad(value, f"reserved key {key!r} in payload dict")
            encoded[key] = to_jsonable(item)
        return encoded
    raise _bad(value, "unsupported type")


def from_jsonable(value: Any) -> Any:
    """Decode a tree produced by :func:`to_jsonable`.

    Raises:
        ConfigurationError: on unknown tags/types — the caller treats
            this as a corrupt blob.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [from_jsonable(v) for v in value]
    if isinstance(value, dict):
        if "__nd__" in value:
            data = [from_jsonable(v) for v in value["data"]]
            array = np.asarray(data, dtype=np.dtype(value["__nd__"]))
            return array.reshape(tuple(value["shape"]))
        if "__enum__" in value:
            name = value["__enum__"]
            if name not in _ENUM_REGISTRY:
                raise _bad(value, f"unknown enum type {name!r}")
            return _ENUM_REGISTRY[name](from_jsonable(value["value"]))
        if "__tuple__" in value:
            return tuple(from_jsonable(v) for v in value["__tuple__"])
        if "__ps__" in value:
            return PhaseSchedule(
                tuple(from_jsonable(p) for p in value["__ps__"])
            )
        if "__dc__" in value:
            name = value["__dc__"]
            if name not in _DATACLASS_REGISTRY:
                raise _bad(value, f"unknown dataclass type {name!r}")
            fields = {
                key: from_jsonable(item)
                for key, item in value["fields"].items()
            }
            return _DATACLASS_REGISTRY[name](**fields)
        return {key: from_jsonable(item) for key, item in value.items()}
    raise _bad(value, "unsupported node")


def canonical_json(tree: Any) -> str:
    """The one true byte form of an encoded tree.

    Sorted keys + compact separators: two semantically equal trees can
    never render differently, so these bytes are safe to hash and safe
    to compare with ``==`` for bit-identity assertions.
    """
    return json.dumps(tree, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
def config_to_dict(config: ExperimentConfig) -> dict[str, Any]:
    """Encode an :class:`ExperimentConfig` as a JSON-compatible dict."""
    fields = {
        f.name: to_jsonable(getattr(config, f.name))
        for f in dataclasses.fields(config)
    }
    return {"__dc__": "ExperimentConfig", "fields": fields}


def config_from_dict(node: dict[str, Any]) -> ExperimentConfig:
    """Reconstruct an :class:`ExperimentConfig`; validation re-runs."""
    if not isinstance(node, dict) or node.get("__dc__") != "ExperimentConfig":
        raise ConfigurationError("not an encoded ExperimentConfig")
    decoded = from_jsonable(node)
    if not isinstance(decoded, ExperimentConfig):
        raise ConfigurationError("decoded object is not an ExperimentConfig")
    return decoded


def config_hash(
    config: ExperimentConfig,
    policy: str | None,
    *,
    salt: str,
    label: str | None = None,
) -> str:
    """Content address of one (config, policy, label) experiment cell.

    The hash covers the full canonical config encoding, the policy name,
    the optional report label (it lands verbatim in the result) and two
    version strings: ``salt`` (the cache's code-version, bumped when run
    semantics change) and the encoding :data:`SCHEMA_VERSION`.  Any
    drift in any of them changes the address, so a stale cache can only
    ever miss — never serve a wrong result.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "salt": salt,
        "policy": policy,
        "label": label,
        "config": config_to_dict(config),
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Encode an :class:`ExperimentResult` as a JSON-compatible dict.

    ``observability`` is recorded as ``None`` (see the module
    docstring); every other field round-trips bit for bit.
    """
    fields: dict[str, Any] = {}
    for f in dataclasses.fields(result):
        if f.name == "observability":
            fields[f.name] = None
            continue
        fields[f.name] = to_jsonable(getattr(result, f.name))
    return {"__dc__": "ExperimentResult", "fields": fields}


def result_from_dict(node: dict[str, Any]) -> ExperimentResult:
    """Reconstruct an :class:`ExperimentResult` from its encoded form."""
    if not isinstance(node, dict) or node.get("__dc__") != "ExperimentResult":
        raise ConfigurationError("not an encoded ExperimentResult")
    decoded = from_jsonable(node)
    if not isinstance(decoded, ExperimentResult):
        raise ConfigurationError("decoded object is not an ExperimentResult")
    return decoded
