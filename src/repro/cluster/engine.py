"""Execution engines for the per-cycle hot path.

The simulator's per-cycle work — stepping running jobs, sweeping the
profiling agents, applying Formula (1) and aggregating per-job power —
can be carried out two ways:

* the **vector** engine (:mod:`repro.cluster.vector`), the production
  path: structure-of-arrays batches over flat numpy arrays, no Python
  loop ever touches an individual node;
* the **object** engine (:mod:`repro.cluster.object_engine`), the
  paper-literal reference: one Python step per node, exactly as §V.A
  describes the per-node profiling agents and the per-node application
  of Formula (1).

Both implement :class:`ClusterEngine` and are **bit-identical**: the
same seeded scenario produces the same decision trace, metrics and
journal records on either engine.  The differential equivalence harness
(``tests/equivalence/``) enforces that promise; the contract that makes
it achievable is

1. every floating-point reduction over nodes goes through
   :func:`canonical_power_sum` (ascending node id, pairwise), and
2. every kernel preserves the scalar operation *association order* of
   its twin (IEEE-754 addition is not associative, so ``a + b + c``
   must be bracketed identically on both paths).

Select an engine with ``engine="vector"`` / ``engine="object"`` on
:class:`~repro.cluster.cluster.Cluster`,
:class:`~repro.experiments.common.ExperimentConfig` or the CLI's
``--engine`` flag.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.cluster.state import ClusterState
    from repro.power.estimator import JobPowerTable
    from repro.power.model import PowerModel
    from repro.workload.executor import FinishedJob
    from repro.workload.job import Job

__all__ = [
    "ClusterEngine",
    "available_engines",
    "canonical_power_sum",
    "get_engine",
]

#: The engine every entry point defaults to.
DEFAULT_ENGINE = "vector"


def canonical_power_sum(
    values: np.ndarray, node_ids: np.ndarray | None = None
) -> float:
    """Sum per-node watts in the canonical order: ascending node id.

    IEEE-754 addition is not associative, so the *order* in which
    per-node power is accumulated is part of the result's bit pattern.
    Both engines therefore reduce through this single function: values
    are re-ordered by ascending node id (a stable sort, so aligned
    inputs that are already ascending — every snapshot and state array
    in the repo — are summed unchanged) and reduced with numpy's
    pairwise summation.

    Args:
        values: Per-node watts.
        node_ids: The node id owning each entry; ``None`` asserts the
            values are already in ascending-node-id order.

    Returns:
        The total, as a Python float.
    """
    vals = np.asarray(values, dtype=np.float64)
    if node_ids is not None:
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.shape != vals.shape:
            raise ConfigurationError(
                "canonical_power_sum: node_ids misaligned with values"
            )
        order = np.argsort(ids, kind="stable")
        vals = vals[order]
    return float(np.sum(vals))


class ClusterEngine(abc.ABC):
    """The per-cycle hot-path kernels, swappable as one unit.

    An engine is stateless: every kernel receives the state (and RNG)
    it operates on, so one engine instance may be shared by a cluster,
    its executor, collector and estimator simultaneously.
    """

    #: Registry name; set by subclasses.
    name: str = ""

    # -- telemetry -----------------------------------------------------
    @abc.abstractmethod
    def sample_telemetry(
        self, state: ClusterState, node_ids: np.ndarray, now: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One sweep of the profiling agents over ``node_ids``.

        Returns ``(level, cpu_util, mem_frac, nic_frac, job_id)``
        arrays aligned with ``node_ids``; all arrays are fresh copies.
        """

    # -- Formula (1) estimation ----------------------------------------
    @abc.abstractmethod
    def estimate_node_power(
        self,
        model: PowerModel,
        level: np.ndarray,
        cpu_util: np.ndarray,
        mem_frac: np.ndarray,
        nic_frac: np.ndarray,
        node_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Formula (1) over sampled operating points, watts per entry.

        ``node_ids`` identifies which node each sample came from; it is
        required on heterogeneous clusters.
        """

    def estimate_savings(
        self,
        model: PowerModel,
        level: np.ndarray,
        cpu_util: np.ndarray,
        mem_frac: np.ndarray,
        nic_frac: np.ndarray,
        node_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Watts each entry would save if degraded one level, ``P − P'``.

        Shared between engines: the subtraction is element-wise, so the
        result is bit-identical as long as both
        :meth:`estimate_node_power` calls are.
        """
        lv = np.asarray(level, dtype=np.int64)
        current = self.estimate_node_power(
            model, lv, cpu_util, mem_frac, nic_frac, node_ids
        )
        lower = self.estimate_node_power(
            model, np.maximum(lv - 1, 0), cpu_util, mem_frac, nic_frac, node_ids
        )
        return current - lower

    # -- per-job aggregation -------------------------------------------
    @abc.abstractmethod
    def aggregate_by_job(
        self, job_id: np.ndarray, values: np.ndarray
    ) -> JobPowerTable:
        """Sum ``values`` over nodes grouped by job id (idle excluded).

        Entries arrive in snapshot order (ascending node id); each
        job's sum accumulates its entries left to right in that order
        on both engines, and the output table lists jobs ascending.
        """

    # -- workload stepping ---------------------------------------------
    @abc.abstractmethod
    def step_jobs(
        self,
        state: ClusterState,
        jobs: list[Job],
        now: float,
        dt: float,
        rng: np.random.Generator,
        util_jitter_std: float,
        node_noise_std: float,
        modulation_factor: float,
    ) -> list[FinishedJob]:
        """Advance every job in ``jobs`` (all RUNNING) by one tick.

        Mutates job progress and the cluster state's load arrays; the
        RNG is consumed in job-list order (per job: one shared jitter
        draw, then one per-node noise draw per node), identically on
        both engines.
        """


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_INSTANCES: dict[str, ClusterEngine] = {}


def _build(name: str) -> ClusterEngine:
    # Lazy imports: the concrete engines import power/workload modules
    # that themselves depend on this module.
    if name == "vector":
        from repro.cluster.vector import VectorEngine

        return VectorEngine()
    if name == "object":
        from repro.cluster.object_engine import ObjectEngine

        return ObjectEngine()
    raise ConfigurationError(
        f"unknown engine {name!r}; available: {', '.join(available_engines())}"
    )


def available_engines() -> list[str]:
    """Engine names accepted by :func:`get_engine`, sorted."""
    return ["object", "vector"]


def get_engine(engine: ClusterEngine | str | None = None) -> ClusterEngine:
    """Resolve an engine selector to a shared engine instance.

    Args:
        engine: An engine instance (returned as-is), a registry name,
            or ``None`` for the default (``"vector"``).
    """
    if isinstance(engine, ClusterEngine):
        return engine
    name = DEFAULT_ENGINE if engine is None else str(engine)
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _build(name)
        _INSTANCES[name] = instance
    return instance
