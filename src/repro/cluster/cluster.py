"""The ``Cluster`` facade: spec + live state + capacity queries.

A :class:`Cluster` is the object most user code touches: examples build
one with :meth:`Cluster.tianhe_1a`, hand it to a scheduler and a power
manager, and run.  It deliberately owns no behaviour of its own beyond
capacity arithmetic — workload execution lives in :mod:`repro.workload`,
power evaluation in :mod:`repro.power` and control in :mod:`repro.core` —
so each can be tested in isolation against a bare cluster.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.engine import ClusterEngine, get_engine
from repro.cluster.node import ComputeNode, NodeSpec
from repro.cluster.state import ClusterState
from repro.errors import ConfigurationError

__all__ = ["Cluster"]


class Cluster:
    """A homogeneous cluster of ``num_nodes`` identical nodes.

    Args:
        spec: Hardware specification shared by every node.
        num_nodes: Node count (the paper's environment has 128).
        name: Label used in reports.
        engine: Hot-path engine preference (instance, registry name, or
            ``None`` for the default vector engine); components built
            around this cluster inherit it.
    """

    def __init__(
        self,
        spec: NodeSpec,
        num_nodes: int,
        name: str = "cluster",
        engine: ClusterEngine | str | None = None,
    ) -> None:
        self.spec = spec
        self.name = name
        self.state = ClusterState(spec, num_nodes)
        self.engine = get_engine(engine)

    @classmethod
    def tianhe_1a(
        cls, num_nodes: int = 128, engine: ClusterEngine | str | None = None
    ) -> "Cluster":
        """The paper's experiment environment: 128 Tianhe-1A blades."""
        return cls(
            NodeSpec.tianhe_1a(), num_nodes, name="tianhe-1a-variant", engine=engine
        )

    @classmethod
    def heterogeneous(
        cls,
        groups: list[tuple[NodeSpec, int]],
        name: str = "hetero-cluster",
        engine: ClusterEngine | str | None = None,
    ) -> "Cluster":
        """A cluster mixing several node types.

        The paper notes its capping algorithm "is applicable to both
        heterogeneous and homogeneous systems as far as the power states
        of a node are discrete"; this constructor builds such a machine.
        Node ids are assigned group by group in the given order.

        Constraints (validated): all types must share the DVFS ladder
        depth (levels stay comparable cluster-wide, as Algorithm 1
        assumes) and the core count (the whole-node allocator sizes
        requests in nodes).

        Args:
            groups: ``(spec, count)`` pairs, count >= 1 each.
            name: Cluster label.
        """
        if not groups:
            raise ConfigurationError("need at least one node group")
        specs = [spec for spec, _ in groups]
        counts = [count for _, count in groups]
        if any(c < 1 for c in counts):
            raise ConfigurationError("every group needs at least one node")
        primary = specs[0]
        for spec in specs[1:]:
            if spec.num_levels != primary.num_levels:
                raise ConfigurationError(
                    "heterogeneous node types must share the DVFS ladder depth"
                )
            if spec.cores != primary.cores:
                raise ConfigurationError(
                    "heterogeneous node types must share the core count "
                    "(whole-node allocation sizes requests in nodes)"
                )
        num_nodes = sum(counts)
        spec_index = np.concatenate(
            [np.full(count, k, dtype=np.int64) for k, count in enumerate(counts)]
        )
        cluster = cls.__new__(cls)
        cluster.spec = primary
        cluster.name = name
        cluster.state = ClusterState(
            primary, num_nodes, specs=specs, spec_index=spec_index
        )
        cluster.engine = get_engine(engine)
        return cluster

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the cluster mixes node types."""
        return self.state.is_heterogeneous

    def spec_of(self, node_id: int) -> NodeSpec:
        """The hardware spec of one node."""
        return self.state.spec_of(node_id)

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of compute nodes."""
        return self.state.num_nodes

    @property
    def cores_per_node(self) -> int:
        """Cores of one node."""
        return self.spec.cores

    @property
    def total_cores(self) -> int:
        """Aggregate core count of the cluster."""
        return self.num_nodes * self.spec.cores

    def nodes_for_processes(self, nprocs: int) -> int:
        """Number of whole nodes needed to host ``nprocs`` MPI processes.

        The paper's launcher places one process per core and allocates
        whole nodes, so a 256-process job on 12-core nodes takes 22 nodes.
        """
        if nprocs < 1:
            raise ConfigurationError("a job needs at least one process")
        return -(-nprocs // self.cores_per_node)  # ceil division

    # ------------------------------------------------------------------
    # Power bounds
    # ------------------------------------------------------------------
    def theoretical_max_power(self) -> float:
        """``P_thy``: all nodes saturated at the top DVFS level, watts."""
        return self.state.theoretical_max_power()

    def minimum_power(self) -> float:
        """All nodes idle at the lowest DVFS level, watts.

        This is the floor the Controllability assumption relies on: a red
        state that drops every candidate to level 0 can always reach it.
        """
        return self.state.minimum_power()

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> ComputeNode:
        """Object view of one node."""
        return self.state.node(node_id)

    def set_privileged_nodes(self, node_ids: np.ndarray | list[int]) -> None:
        """Declare the privileged (uncontrollable) set ``A_uncontrollable``.

        Replaces any previous privileged marking.
        """
        self.state.controllable[:] = True
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.size:
            self.state.set_privileged(ids, privileged=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster {self.name!r} nodes={self.num_nodes}>"
