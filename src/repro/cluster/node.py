"""Node specification and per-node object view.

:class:`NodeSpec` bundles the device specs of one compute blade and
pre-computes the four per-level coefficient vectors that Formula (1)
consumes:

* ``idle_power_per_level`` — ``P_idle(l)``: board + CPU static + memory
  background + NIC idle;
* ``cpu_dynamic_per_level`` — ``Σ_x P_x(l)`` over all CPU packages;
* ``mem_dynamic_per_level`` — ``P_mem(l)``;
* ``nic_dynamic_per_level`` — ``P_NIC(l)``.

All four are plain numpy vectors indexed by DVFS level, so evaluating the
whole cluster's power is four gathers and a fused multiply-add (see
:mod:`repro.power.model`).

:class:`ComputeNode` is a convenience object view over one index of the
structure-of-arrays :class:`~repro.cluster.state.ClusterState`; it exists
for API ergonomics (examples, tests, debugging) — hot paths use the arrays
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.cpu import ProcessorSpec
from repro.cluster.dvfs import DvfsTable
from repro.cluster.memory import MemorySpec
from repro.cluster.nic import NicSpec
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.state import ClusterState

__all__ = ["NodeSpec", "ComputeNode"]


@dataclass(frozen=True)
class NodeSpec:
    """Specification of one compute node (blade).

    Args:
        processor: CPU package spec (all sockets are identical).
        sockets: Number of CPU packages.
        memory: Memory subsystem spec (totals for the whole node).
        nic: Communication device spec.
        board_power_w: Constant power of everything else on the blade —
            voltage regulators, fans' share, baseboard logic.
    """

    processor: ProcessorSpec
    sockets: int
    memory: MemorySpec
    nic: NicSpec
    board_power_w: float
    idle_power_per_level: np.ndarray = field(init=False, repr=False, compare=False)
    cpu_dynamic_per_level: np.ndarray = field(init=False, repr=False, compare=False)
    mem_dynamic_per_level: np.ndarray = field(init=False, repr=False, compare=False)
    nic_dynamic_per_level: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ConfigurationError("a node needs at least one socket")
        if self.board_power_w < 0:
            raise ConfigurationError("board power must be non-negative")
        dvfs = self.processor.dvfs
        idle = (
            self.board_power_w
            + self.sockets * self.processor.idle_power_per_level()
            + self.memory.total_idle_power_w
            + self.nic.idle_power_w
        )
        object.__setattr__(self, "idle_power_per_level", idle)
        object.__setattr__(
            self,
            "cpu_dynamic_per_level",
            self.sockets * self.processor.dynamic_power_per_level(),
        )
        object.__setattr__(
            self, "mem_dynamic_per_level", self.memory.dynamic_power_per_level(dvfs)
        )
        object.__setattr__(
            self, "nic_dynamic_per_level", self.nic.dynamic_power_per_level(dvfs)
        )
        for arr in (
            self.idle_power_per_level,
            self.cpu_dynamic_per_level,
            self.mem_dynamic_per_level,
            self.nic_dynamic_per_level,
        ):
            arr.setflags(write=False)

    @classmethod
    def tianhe_1a(cls) -> "NodeSpec":
        """The paper's compute blade: 2× Xeon X5670, 12× 4 GB DDR3, TH NIC."""
        return cls(
            processor=ProcessorSpec.xeon_x5670(),
            sockets=2,
            memory=MemorySpec.tianhe_ddr3(),
            nic=NicSpec.tianhe_interconnect(),
            board_power_w=70.0,
        )

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    @property
    def dvfs(self) -> DvfsTable:
        """The node's DVFS ladder (that of its processors)."""
        return self.processor.dvfs

    @property
    def num_levels(self) -> int:
        """Number of node power states (= processor P-states)."""
        return self.dvfs.num_levels

    @property
    def top_level(self) -> int:
        """Highest (full-performance) power state index."""
        return self.dvfs.top_level

    @property
    def cores(self) -> int:
        """Total core count of the node."""
        return self.sockets * self.processor.cores

    @property
    def memory_bytes(self) -> int:
        """Total memory capacity of the node, bytes."""
        return self.memory.total_capacity_bytes

    def max_power(self, level: int | None = None) -> float:
        """Peak node power (all devices saturated) at ``level``.

        Defaults to the top level, which is the per-node term ``P_i`` of
        the paper's theoretical maximum ``P_thy = Σ P_i``.
        """
        l = self.top_level if level is None else level
        self.dvfs._check_level(l)
        return float(
            self.idle_power_per_level[l]
            + self.cpu_dynamic_per_level[l]
            + self.mem_dynamic_per_level[l]
            + self.nic_dynamic_per_level[l]
        )

    def min_power(self) -> float:
        """Idle node power at the lowest level (floor of controllability)."""
        return float(self.idle_power_per_level[0])


class ComputeNode:
    """Read/write object view of one node inside a cluster state.

    All properties delegate to the shared structure-of-arrays, so a
    ``ComputeNode`` is always coherent with vectorised code operating on
    the same :class:`~repro.cluster.state.ClusterState`.
    """

    __slots__ = ("_state", "_index")

    def __init__(self, state: "ClusterState", index: int) -> None:
        self._state = state
        self._index = index

    @property
    def node_id(self) -> int:
        """Index of this node within the cluster."""
        return self._index

    @property
    def level(self) -> int:
        """Current DVFS level."""
        return int(self._state.level[self._index])

    @level.setter
    def level(self, value: int) -> None:
        self._state.set_level(self._index, value)

    @property
    def cpu_utilisation(self) -> float:
        """Current CPU utilisation in [0, 1]."""
        return float(self._state.cpu_util[self._index])

    @property
    def memory_fraction(self) -> float:
        """``Mem_used / Mem_total`` in [0, 1]."""
        return float(self._state.mem_frac[self._index])

    @property
    def nic_utilisation(self) -> float:
        """``Data_NIC / (τ · BW_NIC)`` in [0, 1]."""
        return float(self._state.nic_frac[self._index])

    @property
    def job_id(self) -> int | None:
        """Id of the job occupying this node, or ``None`` when idle."""
        jid = int(self._state.job_id[self._index])
        return None if jid < 0 else jid

    @property
    def controllable(self) -> bool:
        """Whether this node may be throttled (not privileged)."""
        return bool(self._state.controllable[self._index])

    @property
    def frequency(self) -> float:
        """Current core frequency, hertz."""
        return self._state.spec.dvfs.frequency(self.level)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ComputeNode {self._index} level={self.level} "
            f"util={self.cpu_utilisation:.2f} job={self.job_id}>"
        )
