"""The paper-literal object-per-node reference engine.

:class:`ObjectEngine` implements every
:class:`~repro.cluster.engine.ClusterEngine` kernel the way §V of the
paper describes the real system: one profiling-agent reading per node,
one scalar Formula (1) evaluation per node, per-job power accumulated
node by node, and job stepping that walks each job's nodes one at a
time.  It exists as the *reference* the vectorised production path is
differentially tested against — every per-node Python loop in the
repository lives here, so the hot-path modules (which reprolint RL106
keeps loop-free) can delegate without exception.

Bit-identity notes (the equivalence harness asserts all of these):

* scalar float arithmetic and numpy float64 element-wise arithmetic
  produce identical bits when the association order matches, so each
  scalar expression below brackets exactly like its vector twin;
* ``numpy.random.Generator`` consumes its stream identically for ``k``
  scalar ``normal()`` draws and one ``normal(size=k)`` draw, so the
  per-node noise loop here reads the same stream as the vector
  engine's batched draw;
* dict accumulation in snapshot order equals ``numpy.bincount``'s
  left-to-right per-bin accumulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.engine import ClusterEngine
from repro.power.estimator import JobPowerTable
from repro.telemetry.agent import NodeSample
from repro.workload.executor import FinishedJob

if TYPE_CHECKING:
    from repro.cluster.state import ClusterState
    from repro.power.model import PowerModel
    from repro.workload.job import Job
    from repro.workload.phases import Phase

__all__ = ["ObjectEngine"]


class ObjectEngine(ClusterEngine):
    """One-Python-step-per-node reference kernels."""

    name = "object"

    # -- telemetry -----------------------------------------------------
    def sample_telemetry(
        self, state: ClusterState, node_ids: np.ndarray, now: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One agent reading per node, packaged into aligned arrays."""
        samples = [
            NodeSample(
                node_id=int(i),
                time=float(now),
                level=int(state.level[i]),
                cpu_util=float(state.cpu_util[i]),
                mem_frac=float(state.mem_frac[i]),
                nic_frac=float(state.nic_frac[i]),
                job_id=int(state.job_id[i]),
            )
            for i in node_ids
        ]
        n = len(samples)
        level = np.empty(n, dtype=np.int64)
        cpu = np.empty(n, dtype=np.float64)
        mem = np.empty(n, dtype=np.float64)
        nic = np.empty(n, dtype=np.float64)
        job = np.empty(n, dtype=np.int64)
        for k, s in enumerate(samples):
            level[k] = s.level
            cpu[k] = s.cpu_util
            mem[k] = s.mem_frac
            nic[k] = s.nic_frac
            job[k] = s.job_id
        return level, cpu, mem, nic, job

    # -- Formula (1) estimation ----------------------------------------
    def estimate_node_power(
        self,
        model: PowerModel,
        level: np.ndarray,
        cpu_util: np.ndarray,
        mem_frac: np.ndarray,
        nic_frac: np.ndarray,
        node_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        lv = np.asarray(level, dtype=np.int64)
        cpu = np.asarray(cpu_util, dtype=np.float64)
        mem = np.asarray(mem_frac, dtype=np.float64)
        nic = np.asarray(nic_frac, dtype=np.float64)
        lv, cpu, mem, nic = np.broadcast_arrays(lv, cpu, mem, nic)
        out = np.empty(lv.shape, dtype=np.float64)
        if node_ids is None:
            for k in range(lv.size):
                out[k] = float(
                    model.evaluate(
                        int(lv[k]), float(cpu[k]), float(mem[k]), float(nic[k])
                    )
                )
            return out
        ids = np.asarray(node_ids, dtype=np.int64)
        for k in range(len(ids)):
            out[k] = float(
                model.evaluate_for_nodes(
                    ids[k : k + 1],
                    lv[k : k + 1],
                    cpu[k : k + 1],
                    mem[k : k + 1],
                    nic[k : k + 1],
                )[0]
            )
        return out

    # -- per-job aggregation -------------------------------------------
    def aggregate_by_job(
        self, job_id: np.ndarray, values: np.ndarray
    ) -> JobPowerTable:
        jid_arr = np.asarray(job_id, dtype=np.int64)
        vals = np.asarray(values, dtype=np.float64)
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        for k in range(len(jid_arr)):
            jid = int(jid_arr[k])
            if jid < 0:
                continue
            sums[jid] = sums.get(jid, 0.0) + float(vals[k])
            counts[jid] = counts.get(jid, 0) + 1
        job_ids = np.array(sorted(sums), dtype=np.int64)
        power = np.array([sums[int(j)] for j in job_ids], dtype=np.float64)
        node_counts = np.array([counts[int(j)] for j in job_ids], dtype=np.int64)
        return JobPowerTable(job_ids, power, node_counts)

    # -- workload stepping ---------------------------------------------
    def step_jobs(
        self,
        state: ClusterState,
        jobs: list[Job],
        now: float,
        dt: float,
        rng: np.random.Generator,
        util_jitter_std: float,
        node_noise_std: float,
        modulation_factor: float,
    ) -> list[FinishedJob]:
        finished: list[FinishedJob] = []
        top_level = state.spec.top_level
        for job in jobs:
            phase = job.app.schedule.phase_at(job.cycle_position)
            # Bottleneck rate: the job advances at the speed of its
            # slowest node (bulk-synchronous model), found node by node.
            s_min = np.inf
            min_level = top_level
            for k in range(len(job.nodes)):
                speed = float(state.speed_of(job.nodes[k : k + 1])[0])
                if speed < s_min:
                    s_min = speed
                lv = int(state.level[job.nodes[k]])
                if lv < min_level:
                    min_level = lv
            beta = phase.compute_boundness
            rate = 1.0 / ((1.0 - beta) + beta / s_min)
            if min_level < top_level:
                job.degraded_exposure_s += dt
            remaining = job.remaining_work_s
            step_work = rate * dt
            if step_work >= remaining and remaining >= 0.0:
                time_to_finish = remaining / rate if rate > 0 else dt
                job.progress_s = job.nominal_runtime_s
                self._write_load(
                    state, job, phase, now, rng,
                    util_jitter_std, node_noise_std, modulation_factor,
                )
                finished.append(
                    FinishedJob(job=job, finish_time=now + time_to_finish)
                )
                continue
            job.progress_s += step_work
            self._write_load(
                state, job, phase, now, rng,
                util_jitter_std, node_noise_std, modulation_factor,
            )
        return finished

    @staticmethod
    def _write_load(
        state: ClusterState,
        job: Job,
        phase: Phase,
        now: float,
        rng: np.random.Generator,
        util_jitter_std: float,
        node_noise_std: float,
        modulation_factor: float,
    ) -> None:
        jitter = modulation_factor
        if util_jitter_std > 0:
            jitter *= max(0.0, 1.0 + rng.normal(0.0, util_jitter_std))
        assert job.start_time is not None
        ramp = 1.0
        if job.app.mem_ramp_s > 0:
            ramp = min(1.0, (now - job.start_time) / job.app.mem_ramp_s)
        mem = job.app.mem_fraction * ramp
        for k in range(len(job.nodes)):
            node_factor = 1.0
            if node_noise_std > 0:
                node_factor = max(0.0, 1.0 + rng.normal(0.0, node_noise_std))
            state.set_load(
                job.nodes[k : k + 1],
                cpu_util=phase.cpu_util * jitter * node_factor,
                mem_frac=mem,
                nic_frac=phase.nic_frac * jitter * node_factor,
            )
