"""Structure-of-arrays live state of every node in the cluster.

The simulator's hot loop evaluates Formula (1) for every node every control
cycle.  With 128 nodes and a 1-second cycle, a 12-hour experiment touches
~5.5 million node-cycles; a Python object per node per cycle would dominate
the run time.  Following the scientific-Python optimisation guides, the
live state is therefore a handful of flat numpy arrays indexed by node id:

==================  =========  ==============================================
array               dtype      meaning
==================  =========  ==============================================
``level``           int64      current DVFS level
``cpu_util``        float64    CPU utilisation ``Uti_CPU`` ∈ [0, 1]
``mem_frac``        float64    ``Mem_used / Mem_total`` ∈ [0, 1]
``nic_frac``        float64    ``Data_NIC / (τ·BW_NIC)`` ∈ [0, 1]
``job_id``          int64      occupying job id, ``-1`` when idle
``controllable``    bool       node is in the non-privileged pool
==================  =========  ==============================================

Invariants (enforced by the mutation API, checked by property tests):

* ``0 <= level <= spec.top_level`` element-wise;
* utilisation-like arrays stay inside ``[0, 1]``;
* idle nodes (``job_id == -1``) have zero cpu/nic load (their ``mem_frac``
  holds the OS-resident floor).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import ComputeNode, NodeSpec
from repro.errors import ConfigurationError

__all__ = ["ClusterState"]

#: Baseline memory fraction of an idle node (OS, daemons, page cache floor).
IDLE_MEM_FRACTION = 0.05


class ClusterState:
    """Mutable, vectorised operating state of a homogeneous cluster.

    Args:
        spec: The per-node hardware specification (all nodes identical, as
            in the paper's platform).
        num_nodes: Number of compute nodes.
        initial_level: DVFS level every node starts at; defaults to the
            top (full-performance) level.
    """

    def __init__(
        self,
        spec: NodeSpec,
        num_nodes: int,
        initial_level: int | None = None,
        specs: list[NodeSpec] | None = None,
        spec_index: np.ndarray | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        start = spec.top_level if initial_level is None else int(initial_level)
        spec.dvfs._check_level(start)
        self.spec = spec
        #: All node types present; ``specs[spec_index[i]]`` is node i's
        #: type.  Homogeneous clusters have one entry and an all-zero
        #: index.  Heterogeneous types must share the ladder depth so
        #: DVFS levels remain comparable cluster-wide (see
        #: :meth:`repro.cluster.cluster.Cluster.heterogeneous`).
        self.specs: list[NodeSpec] = [spec] if specs is None else list(specs)
        if not self.specs or self.specs[0] is not spec:
            raise ConfigurationError("specs[0] must be the primary spec")
        for other in self.specs[1:]:
            if other.num_levels != spec.num_levels:
                raise ConfigurationError(
                    "heterogeneous node types must share the DVFS ladder depth"
                )
        if spec_index is None:
            self.spec_index = np.zeros(num_nodes, dtype=np.int64)
        else:
            idx = np.asarray(spec_index, dtype=np.int64)
            if idx.shape != (num_nodes,):
                raise ConfigurationError("spec_index must have one entry per node")
            if idx.size and (idx.min() < 0 or idx.max() >= len(self.specs)):
                raise ConfigurationError("spec_index out of range")
            self.spec_index = idx.copy()
        self._speed_tables = np.stack(
            [
                np.asarray(s.dvfs.speed(np.arange(s.num_levels)), dtype=np.float64)
                for s in self.specs
            ]
        )
        self.num_nodes = int(num_nodes)
        self.level = np.full(num_nodes, start, dtype=np.int64)
        self.cpu_util = np.zeros(num_nodes, dtype=np.float64)
        self.mem_frac = np.full(num_nodes, IDLE_MEM_FRACTION, dtype=np.float64)
        self.nic_frac = np.zeros(num_nodes, dtype=np.float64)
        self.job_id = np.full(num_nodes, -1, dtype=np.int64)
        self.controllable = np.ones(num_nodes, dtype=bool)

    @property
    def is_heterogeneous(self) -> bool:
        """Whether more than one node type is present."""
        return len(self.specs) > 1

    def spec_of(self, node_id: int) -> NodeSpec:
        """The hardware spec of one node."""
        self._check_node(node_id)
        return self.specs[int(self.spec_index[node_id])]

    def speed_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Relative compute speed of the given nodes at their current
        levels (``f/f_max`` of each node's own ladder)."""
        ids = np.asarray(node_ids, dtype=np.int64)
        return self._speed_tables[self.spec_index[ids], self.level[ids]]

    # ------------------------------------------------------------------
    # Node views
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> ComputeNode:
        """Object view of node ``node_id`` (shares this state)."""
        self._check_node(node_id)
        return ComputeNode(self, node_id)

    def nodes(self) -> list[ComputeNode]:
        """Object views of every node."""
        return [ComputeNode(self, i) for i in range(self.num_nodes)]

    # ------------------------------------------------------------------
    # DVFS level mutation
    # ------------------------------------------------------------------
    def set_level(self, node_id: int, level: int) -> None:
        """Set one node's DVFS level (validated)."""
        self._check_node(node_id)
        self.spec.dvfs._check_level(int(level))
        self.level[node_id] = int(level)

    def set_levels(self, node_ids: np.ndarray, levels: np.ndarray | int) -> None:
        """Vectorised level assignment for a set of nodes (validated)."""
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_nodes):
            raise ConfigurationError("node id out of range in set_levels")
        lv = np.broadcast_to(np.asarray(levels, dtype=np.int64), ids.shape)
        if lv.size and (lv.min() < 0 or lv.max() > self.spec.top_level):
            raise ConfigurationError("DVFS level out of range in set_levels")
        self.level[ids] = lv

    def degrade(self, node_ids: np.ndarray, steps: int = 1) -> None:
        """Lower the level of ``node_ids`` by ``steps``, floored at 0."""
        ids = np.asarray(node_ids, dtype=np.int64)
        self.level[ids] = np.maximum(self.level[ids] - int(steps), 0)

    def upgrade(self, node_ids: np.ndarray, steps: int = 1) -> None:
        """Raise the level of ``node_ids`` by ``steps``, capped at top."""
        ids = np.asarray(node_ids, dtype=np.int64)
        self.level[ids] = np.minimum(self.level[ids] + int(steps), self.spec.top_level)

    # ------------------------------------------------------------------
    # Load / occupancy mutation (driven by the workload engine)
    # ------------------------------------------------------------------
    def assign_job(self, node_ids: np.ndarray, job_id: int) -> None:
        """Mark ``node_ids`` as occupied by ``job_id``.

        Raises:
            ConfigurationError: if any node is already occupied.
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        if np.any(self.job_id[ids] >= 0):
            raise ConfigurationError("assign_job over an occupied node")
        self.job_id[ids] = int(job_id)

    def release_job(self, node_ids: np.ndarray) -> None:
        """Return ``node_ids`` to the idle pool and zero their load."""
        ids = np.asarray(node_ids, dtype=np.int64)
        self.job_id[ids] = -1
        self.cpu_util[ids] = 0.0
        self.mem_frac[ids] = IDLE_MEM_FRACTION
        self.nic_frac[ids] = 0.0

    def set_load(
        self,
        node_ids: np.ndarray,
        cpu_util: float | np.ndarray,
        mem_frac: float | np.ndarray,
        nic_frac: float | np.ndarray,
    ) -> None:
        """Set the operating point of a set of nodes (clipped to [0, 1]).

        Uses the fmin/fmax ufuncs directly — this runs once per job per
        tick and the ``np.clip`` dispatch wrapper is measurable there.
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        self.cpu_util[ids] = np.fmin(np.fmax(cpu_util, 0.0), 1.0)
        self.mem_frac[ids] = np.fmin(np.fmax(mem_frac, 0.0), 1.0)
        self.nic_frac[ids] = np.fmin(np.fmax(nic_frac, 0.0), 1.0)

    def set_privileged(self, node_ids: np.ndarray, privileged: bool = True) -> None:
        """Mark nodes as privileged (uncontrollable) or controllable."""
        ids = np.asarray(node_ids, dtype=np.int64)
        self.controllable[ids] = not privileged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def idle_mask(self) -> np.ndarray:
        """Boolean mask of nodes not running any job."""
        return self.job_id < 0

    def busy_mask(self) -> np.ndarray:
        """Boolean mask of nodes occupied by a job."""
        return self.job_id >= 0

    def idle_nodes(self) -> np.ndarray:
        """Ids of idle nodes, ascending."""
        return np.flatnonzero(self.job_id < 0).astype(np.int64)

    def nodes_of_job(self, job_id: int) -> np.ndarray:
        """Ids of the nodes running ``job_id`` (may be empty)."""
        return np.flatnonzero(self.job_id == int(job_id)).astype(np.int64)

    def running_job_ids(self) -> np.ndarray:
        """Distinct job ids currently occupying nodes, ascending."""
        occupied = self.job_id[self.job_id >= 0]
        return np.unique(occupied)

    def theoretical_max_power(self) -> float:
        """``P_thy = Σ_i P_i``: every node flat-out at the top level."""
        per_spec = np.asarray([s.max_power() for s in self.specs])
        return float(per_spec[self.spec_index].sum())

    def minimum_power(self) -> float:
        """Every node idle at its lowest level (controllability floor)."""
        per_spec = np.asarray([s.min_power() for s in self.specs])
        return float(per_spec[self.spec_index].sum())

    def copy(self) -> "ClusterState":
        """Deep copy (used by what-if evaluation in policies and tests)."""
        clone = ClusterState.__new__(ClusterState)
        clone.spec = self.spec
        clone.specs = list(self.specs)
        clone.spec_index = self.spec_index.copy()
        clone._speed_tables = self._speed_tables
        clone.num_nodes = self.num_nodes
        clone.level = self.level.copy()
        clone.cpu_util = self.cpu_util.copy()
        clone.mem_frac = self.mem_frac.copy()
        clone.nic_frac = self.nic_frac.copy()
        clone.job_id = self.job_id.copy()
        clone.controllable = self.controllable.copy()
        return clone

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.num_nodes:
            raise ConfigurationError(
                f"node id {node_id} outside [0, {self.num_nodes - 1}]"
            )
