"""Processor specification and per-level CPU power figures.

Formula (1) in the paper needs, for each DVFS level ``l``, the *maximal
dynamic* power of a CPU unit ``P_cpu(l)`` — "the gap between its maximal
power and idle power" — plus the CPU's contribution to the node's static
(idle) power.  :class:`ProcessorSpec` derives both from a handful of
datasheet-style figures and the :class:`~repro.cluster.dvfs.DvfsTable`:

* dynamic power at the top level is ``max_power - idle power`` there, and
  scales down with the table's ``f·V²`` factor;
* static (idle) power tracks voltage via leakage ``∝ V²`` between the
  given idle figures at the bottom and top of the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.dvfs import DvfsTable
from repro.errors import ConfigurationError

__all__ = ["ProcessorSpec"]


@dataclass(frozen=True)
class ProcessorSpec:
    """One physical CPU package (socket).

    Args:
        name: Marketing name, for reports.
        cores: Physical core count.
        dvfs: The package's P-state ladder.
        max_power_w: Package power at the top level under full load
            (roughly the TDP).
        idle_power_top_w: Package power when idle at the *top* level.
        idle_power_bottom_w: Package power when idle at the *bottom* level.
    """

    name: str
    cores: int
    dvfs: DvfsTable
    max_power_w: float
    idle_power_top_w: float
    idle_power_bottom_w: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("a processor needs at least one core")
        if self.max_power_w <= 0:
            raise ConfigurationError("max_power_w must be positive")
        if not 0 <= self.idle_power_bottom_w <= self.idle_power_top_w:
            raise ConfigurationError(
                "idle power figures must satisfy 0 <= bottom <= top"
            )
        if self.idle_power_top_w >= self.max_power_w:
            raise ConfigurationError("idle power must be below max power")

    @classmethod
    def xeon_x5670(cls) -> "ProcessorSpec":
        """The Intel Xeon X5670 used in Tianhe-1A compute blades.

        6 cores, 95 W TDP; idle figures chosen so a dual-socket node idles
        near 160 W and peaks near 350 W, consistent with published
        Tianhe-1A blade-level numbers.
        """
        return cls(
            name="Intel Xeon X5670",
            cores=6,
            dvfs=DvfsTable.xeon_x5670(),
            max_power_w=95.0,
            idle_power_top_w=32.0,
            idle_power_bottom_w=20.0,
        )

    # ------------------------------------------------------------------
    # Per-level power figures (vectorised over the whole ladder)
    # ------------------------------------------------------------------
    def idle_power_per_level(self) -> np.ndarray:
        """Static (idle) package power at every level, watts.

        Leakage scales roughly with ``V²``; we interpolate between the two
        datasheet idle figures along the normalised ``V²`` ramp.
        """
        v = np.asarray(self.dvfs.voltages_v, dtype=np.float64)
        v2 = v**2
        lo, hi = v2[0], v2[-1]
        frac = (v2 - lo) / (hi - lo) if hi > lo else np.zeros_like(v2)
        return self.idle_power_bottom_w + frac * (
            self.idle_power_top_w - self.idle_power_bottom_w
        )

    def dynamic_power_per_level(self) -> np.ndarray:
        """Maximal dynamic package power ``P_cpu(l)`` at every level, watts.

        This is the Formula (1) coefficient: multiplied by CPU utilisation
        it gives the load-dependent part of the package's draw.
        """
        top_dynamic = self.max_power_w - self.idle_power_top_w
        scale = np.asarray(
            self.dvfs.dynamic_scale(np.arange(self.dvfs.num_levels)),
            dtype=np.float64,
        )
        return top_dynamic * scale

    def max_power_per_level(self) -> np.ndarray:
        """Total package power at full utilisation per level, watts."""
        return self.idle_power_per_level() + self.dynamic_power_per_level()
