"""Discrete DVFS (P-state) tables.

The paper's experiment platform controls node power exclusively through
processor DVFS: *"Each level of node power degradation is implemented by
decreasing one level of processor frequency"* (§V.A).  A
:class:`DvfsTable` captures the discrete ladder of (frequency, voltage)
operating points; level ``0`` is the lowest frequency (the node's "lowest
power state") and level ``num_levels - 1`` the highest, matching the
paper's convention that throttling *decreases* ``l``.

Power physics encoded here: CMOS dynamic power scales as ``f · V²``.  The
table exposes :meth:`DvfsTable.dynamic_scale`, the per-level dynamic-power
multiplier normalised to 1.0 at the top level, and
:meth:`DvfsTable.speed`, the compute-throughput multiplier ``f / f_max``
used by the workload runtime-stretch model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.units import ghz

__all__ = ["DvfsTable"]


@dataclass(frozen=True)
class DvfsTable:
    """An immutable ladder of DVFS operating points.

    Args:
        frequencies_hz: Core frequencies in hertz, strictly increasing;
            index in this tuple is the DVFS *level*.
        voltages_v: Supply voltage at each level, non-decreasing.

    Raises:
        ConfigurationError: on empty, non-monotone or mismatched tables.
    """

    frequencies_hz: tuple[float, ...]
    voltages_v: tuple[float, ...]
    _dynamic_scale: np.ndarray = field(init=False, repr=False, compare=False)
    _speed: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        freqs = self.frequencies_hz
        volts = self.voltages_v
        if len(freqs) == 0:
            raise ConfigurationError("DvfsTable needs at least one level")
        if len(freqs) != len(volts):
            raise ConfigurationError(
                f"{len(freqs)} frequencies but {len(volts)} voltages"
            )
        if any(f <= 0 for f in freqs) or any(v <= 0 for v in volts):
            raise ConfigurationError("frequencies and voltages must be positive")
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ConfigurationError("frequencies must be strictly increasing")
        if any(b < a for a, b in zip(volts, volts[1:])):
            raise ConfigurationError("voltages must be non-decreasing")
        f = np.asarray(freqs, dtype=np.float64)
        v = np.asarray(volts, dtype=np.float64)
        scale = (f * v**2) / (f[-1] * v[-1] ** 2)
        object.__setattr__(self, "_dynamic_scale", scale)
        object.__setattr__(self, "_speed", f / f[-1])

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def xeon_x5670(cls) -> "DvfsTable":
        """The 10-level ladder of the Intel Xeon X5670 (1.60–2.93 GHz).

        Frequencies follow the X5670's 133 MHz-bus multiplier steps; the
        voltage ramp is a linear interpolation across the part's VID range,
        which is accurate enough for the f·V² dynamic-power scaling the
        simulator needs.
        """
        freqs = tuple(
            ghz(f) for f in (1.60, 1.73, 1.86, 2.00, 2.13, 2.26, 2.40, 2.53, 2.66, 2.93)
        )
        v_min, v_max = 0.85, 1.25
        f_lo, f_hi = freqs[0], freqs[-1]
        volts = tuple(
            v_min + (v_max - v_min) * (f - f_lo) / (f_hi - f_lo) for f in freqs
        )
        return cls(frequencies_hz=freqs, voltages_v=volts)

    @classmethod
    def linear(
        cls,
        num_levels: int,
        f_min_hz: float,
        f_max_hz: float,
        v_min: float = 0.85,
        v_max: float = 1.25,
    ) -> "DvfsTable":
        """A synthetic evenly-spaced ladder — handy for tests and what-ifs."""
        if num_levels < 1:
            raise ConfigurationError("num_levels must be >= 1")
        if num_levels == 1:
            return cls(frequencies_hz=(float(f_max_hz),), voltages_v=(float(v_max),))
        if f_min_hz >= f_max_hz:
            raise ConfigurationError("f_min_hz must be below f_max_hz")
        freqs = tuple(np.linspace(f_min_hz, f_max_hz, num_levels).tolist())
        volts = tuple(np.linspace(v_min, v_max, num_levels).tolist())
        return cls(frequencies_hz=freqs, voltages_v=volts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """Number of P-states in the ladder."""
        return len(self.frequencies_hz)

    @property
    def top_level(self) -> int:
        """Index of the highest-frequency (highest-power) state."""
        return len(self.frequencies_hz) - 1

    def frequency(self, level: int) -> float:
        """Core frequency in hertz at ``level``."""
        self._check_level(level)
        return self.frequencies_hz[level]

    def voltage(self, level: int) -> float:
        """Supply voltage in volts at ``level``."""
        self._check_level(level)
        return self.voltages_v[level]

    def speed(self, level: int | np.ndarray) -> float | np.ndarray:
        """Relative compute throughput ``f(level) / f_max`` in ``(0, 1]``.

        Accepts a scalar level or an integer array of levels (vectorised).
        """
        return self._speed[level]

    def dynamic_scale(self, level: int | np.ndarray) -> float | np.ndarray:
        """Relative dynamic power ``f·V² / (f_max·V_max²)`` in ``(0, 1]``.

        Accepts a scalar level or an integer array of levels (vectorised).
        """
        return self._dynamic_scale[level]

    def clamp(self, level: int) -> int:
        """Clamp an arbitrary integer into the valid level range."""
        return max(0, min(self.top_level, int(level)))

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise ConfigurationError(
                f"DVFS level {level} outside [0, {self.num_levels - 1}]"
            )
