"""Network interface (interconnect chipset) specification.

Formula (1) charges the communication device ``Data_NIC / (τ · BW_NIC) ·
P_NIC(l)``: the fraction of the link's capacity actually used during the
sampling interval times the device's maximal dynamic power.  The paper's
platform embeds a Tianhe-1A proprietary communication chipset on each main
board; its link rate was 160 Gb/s per direction in the TH-1A generation.

As with memory, NIC power is only indirectly coupled to CPU DVFS (a slower
core injects messages more slowly); the coupling factor mirrors
:class:`repro.cluster.memory.MemorySpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.dvfs import DvfsTable
from repro.errors import ConfigurationError
from repro.units import gb_per_s

__all__ = ["NicSpec"]


@dataclass(frozen=True)
class NicSpec:
    """The communication device of one node.

    Args:
        bandwidth_bytes_per_s: Peak unidirectional link bandwidth.
        max_dynamic_power_w: Peak dynamic power at full link utilisation.
        idle_power_w: Power drawn with an idle link (part of node idle).
        dvfs_coupling: Fraction of dynamic NIC power scaling with core
            speed, in ``[0, 1]``.
    """

    bandwidth_bytes_per_s: float
    max_dynamic_power_w: float
    idle_power_w: float
    dvfs_coupling: float = 0.2

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("NIC bandwidth must be positive")
        if self.max_dynamic_power_w < 0:
            raise ConfigurationError("NIC dynamic power must be non-negative")
        if self.idle_power_w < 0:
            raise ConfigurationError("NIC idle power must be non-negative")
        if not 0.0 <= self.dvfs_coupling <= 1.0:
            raise ConfigurationError("dvfs_coupling must lie in [0, 1]")

    @classmethod
    def tianhe_interconnect(cls) -> "NicSpec":
        """The Tianhe-1A proprietary high-speed communication chipset.

        160 Gb/s ≈ 20 GB/s per direction; ~15 W peak dynamic over ~10 W
        idle, in line with contemporary high-radix router NICs.
        """
        return cls(
            bandwidth_bytes_per_s=gb_per_s(20.0),
            max_dynamic_power_w=15.0,
            idle_power_w=10.0,
            dvfs_coupling=0.2,
        )

    def utilisation(self, data_bytes: float, interval_s: float) -> float:
        """Link utilisation ``Data_NIC / (τ · BW_NIC)``, clamped to [0, 1].

        Args:
            data_bytes: Bytes moved through the device during the interval.
            interval_s: Sampling interval τ, seconds.
        """
        if interval_s <= 0:
            raise ConfigurationError("sampling interval must be positive")
        frac = data_bytes / (interval_s * self.bandwidth_bytes_per_s)
        return float(min(1.0, max(0.0, frac)))

    def dynamic_power_per_level(self, dvfs: DvfsTable) -> np.ndarray:
        """``P_NIC(l)`` for every level of ``dvfs``, watts."""
        speed = np.asarray(dvfs.speed(np.arange(dvfs.num_levels)), dtype=np.float64)
        factor = (1.0 - self.dvfs_coupling) + self.dvfs_coupling * speed
        return self.max_dynamic_power_w * factor
