"""The structure-of-arrays fast path of the per-cycle hot loop.

# reprolint: hot-path

:class:`VectorEngine` is the production implementation of
:class:`~repro.cluster.engine.ClusterEngine`: telemetry sweeps are fancy-
indexed gathers, Formula (1) is fused array arithmetic, per-job
aggregation is ``numpy.bincount``, and job stepping batches every
running job's nodes into one concatenated array walk (one ``speed_of``
gather, one segmented ``minimum.reduceat`` for the bottleneck rate, one
combined ``set_load`` write).  No kernel loops over nodes in Python —
reprolint's RL106 enforces that for every module carrying the hot-path
marker above.

Bit-identity with the object engine is engineered, not hoped for: see
the module docstring of :mod:`repro.cluster.engine` for the contract,
and the inline notes below for where each association order matters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.engine import ClusterEngine
from repro.power.estimator import JobPowerTable, NodePowerEstimator
from repro.workload.executor import FinishedJob

if TYPE_CHECKING:
    from repro.cluster.state import ClusterState
    from repro.power.model import PowerModel
    from repro.workload.job import Job

__all__ = ["VectorEngine"]


class VectorEngine(ClusterEngine):
    """Vectorised hot-path kernels (the default engine)."""

    name = "vector"

    # -- telemetry -----------------------------------------------------
    def sample_telemetry(
        self, state: ClusterState, node_ids: np.ndarray, now: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sweep every agent at once: five gathers, five copies."""
        ids = node_ids
        return (
            state.level[ids].copy(),
            state.cpu_util[ids].copy(),
            state.mem_frac[ids].copy(),
            state.nic_frac[ids].copy(),
            state.job_id[ids].copy(),
        )

    # -- Formula (1) estimation ----------------------------------------
    def estimate_node_power(
        self,
        model: PowerModel,
        level: np.ndarray,
        cpu_util: np.ndarray,
        mem_frac: np.ndarray,
        nic_frac: np.ndarray,
        node_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        if node_ids is not None:
            return model.evaluate_for_nodes(
                node_ids, level, cpu_util, mem_frac, nic_frac
            )
        return np.asarray(
            model.evaluate(level, cpu_util, mem_frac, nic_frac),
            dtype=np.float64,
        )

    # -- per-job aggregation -------------------------------------------
    def aggregate_by_job(
        self, job_id: np.ndarray, values: np.ndarray
    ) -> JobPowerTable:
        # ``numpy.bincount`` accumulates each bin's weights left to
        # right in input order — the same association the object
        # engine's dict accumulation uses, hence bit-identical sums.
        return NodePowerEstimator.aggregate_by_job(job_id, values)

    # -- workload stepping ---------------------------------------------
    def step_jobs(
        self,
        state: ClusterState,
        jobs: list[Job],
        now: float,
        dt: float,
        rng: np.random.Generator,
        util_jitter_std: float,
        node_noise_std: float,
        modulation_factor: float,
    ) -> list[FinishedJob]:
        if not jobs:
            return []
        n_jobs = len(jobs)
        betas = np.empty(n_jobs, dtype=np.float64)
        cpu_sig = np.empty(n_jobs, dtype=np.float64)
        nic_sig = np.empty(n_jobs, dtype=np.float64)
        mem = np.empty(n_jobs, dtype=np.float64)
        jitters = np.empty(n_jobs, dtype=np.float64)
        counts = np.empty(n_jobs, dtype=np.int64)
        id_blocks: list[np.ndarray] = []
        factor_blocks: list[np.ndarray] = []
        # Pass 1 — cheap per-*job* scalar work.  The RNG draw order is
        # the contract: per job, one shared jitter scalar then one
        # per-node noise vector, exactly the stream the object engine
        # consumes with its per-node scalar draws.
        for j, job in enumerate(jobs):
            phase = job.app.schedule.phase_at(job.cycle_position)
            betas[j] = phase.compute_boundness
            cpu_sig[j] = phase.cpu_util
            nic_sig[j] = phase.nic_frac
            jitter = modulation_factor
            if util_jitter_std > 0:
                jitter *= max(0.0, 1.0 + rng.normal(0.0, util_jitter_std))
            jitters[j] = jitter
            k = len(job.nodes)
            counts[j] = k
            id_blocks.append(job.nodes)
            if node_noise_std > 0:
                factor_blocks.append(
                    np.maximum(0.0, 1.0 + rng.normal(0.0, node_noise_std, size=k))
                )
            else:
                factor_blocks.append(np.ones(k))
            assert job.start_time is not None
            ramp = 1.0
            if job.app.mem_ramp_s > 0:
                ramp = min(1.0, (now - job.start_time) / job.app.mem_ramp_s)
            mem[j] = job.app.mem_fraction * ramp

        # Pass 2 — one batched array walk over every running node.
        all_ids = np.concatenate(id_blocks)
        node_factor = np.concatenate(factor_blocks)
        offsets = np.zeros(n_jobs, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        speeds = state.speed_of(all_ids)
        # ``minimum.reduceat`` is an exact segmented min — identical to
        # the object engine's per-node running min.
        s_min = np.minimum.reduceat(speeds, offsets)
        rates = 1.0 / ((1.0 - betas) + betas / s_min)
        min_levels = np.minimum.reduceat(state.level[all_ids], offsets)
        degraded = min_levels < state.spec.top_level

        # Pass 3 — per-job progress bookkeeping (scalar, RNG-free).
        finished: list[FinishedJob] = []
        for j, job in enumerate(jobs):
            if degraded[j]:
                job.degraded_exposure_s += dt
            rate = float(rates[j])
            remaining = job.remaining_work_s
            step_work = rate * dt
            if step_work >= remaining and remaining >= 0.0:
                time_to_finish = remaining / rate if rate > 0 else dt
                job.progress_s = job.nominal_runtime_s
                finished.append(FinishedJob(job=job, finish_time=now + time_to_finish))
            else:
                job.progress_s += step_work

        # Pass 4 — one combined load write.  Job node sets are disjoint,
        # so this equals the object engine's per-node writes; the
        # association ``(signature · jitter) · node_factor`` matches its
        # scalar product order.
        cpu_vals = np.repeat(cpu_sig * jitters, counts) * node_factor
        nic_vals = np.repeat(nic_sig * jitters, counts) * node_factor
        mem_vals = np.repeat(mem, counts)
        state.set_load(
            all_ids, cpu_util=cpu_vals, mem_frac=mem_vals, nic_frac=nic_vals
        )
        return finished
