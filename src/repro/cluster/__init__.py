"""Machine model substrate: nodes, devices and DVFS.

This package simulates the hardware platform of the paper's evaluation — a
128-node Tianhe-1A variant — at the level of detail the power-capping
architecture actually observes and actuates:

* :mod:`repro.cluster.dvfs` — discrete frequency/voltage tables (the Xeon
  X5670's 10 P-states ship as the default);
* :mod:`repro.cluster.cpu`, :mod:`repro.cluster.memory`,
  :mod:`repro.cluster.nic` — per-device specifications with maximum dynamic
  power figures used by the Formula (1) power model;
* :mod:`repro.cluster.node` — the node specification and a thin per-node
  object view;
* :mod:`repro.cluster.state` — the numpy structure-of-arrays holding the
  live operating state of every node (DVFS level, CPU utilisation, memory
  occupancy, NIC rate, running job), which is what makes whole-cluster
  power evaluation a handful of vectorised array operations;
* :mod:`repro.cluster.cluster` — the aggregate ``Cluster`` facade;
* :mod:`repro.cluster.engine` — the hot-path engine switch (vectorised
  production path vs. the paper-literal object-per-node reference, bit-
  identical by construction), with the concrete engines in
  :mod:`repro.cluster.vector` and :mod:`repro.cluster.object_engine`.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.cpu import ProcessorSpec
from repro.cluster.dvfs import DvfsTable
from repro.cluster.engine import (
    ClusterEngine,
    available_engines,
    canonical_power_sum,
    get_engine,
)
from repro.cluster.memory import MemorySpec
from repro.cluster.nic import NicSpec
from repro.cluster.node import ComputeNode, NodeSpec
from repro.cluster.state import ClusterState

__all__ = [
    "Cluster",
    "ClusterEngine",
    "ClusterState",
    "ComputeNode",
    "DvfsTable",
    "MemorySpec",
    "NicSpec",
    "NodeSpec",
    "ProcessorSpec",
    "available_engines",
    "canonical_power_sum",
    "get_engine",
]
