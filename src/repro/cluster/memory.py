"""Memory subsystem specification.

Formula (1) charges the memory subsystem ``(Mem_used / Mem_total) ·
P_mem(l)`` where ``P_mem(l)`` is the maximal dynamic power of all memory
devices at node power level ``l``.  DRAM power does not follow CPU DVFS
directly, but on the paper's platform the *only* actuator is CPU frequency
and memory traffic slows with the cores, so ``P_mem(l)`` retains a mild
level dependence (§V.A: "the power consumption of all other devices is
indirectly managed … through decreas[ing] the power consumption level of
the processors").  We model that with a configurable coupling factor:

``P_mem(l) = P_mem_max · ((1 - coupling) + coupling · speed(l))``

``coupling = 0`` makes memory power level-independent; ``coupling = 1``
scales it fully with core speed.  The default 0.4 reflects that DRAM
activate/precharge energy tracks request rate (which tracks core speed for
bandwidth-bound phases) while background/refresh power does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.dvfs import DvfsTable
from repro.errors import ConfigurationError
from repro.units import gib

__all__ = ["MemorySpec"]


@dataclass(frozen=True)
class MemorySpec:
    """The memory devices of one node.

    Args:
        devices: Number of DIMMs.
        capacity_per_device_bytes: Capacity of each DIMM, bytes.
        max_dynamic_power_per_device_w: Peak dynamic power of one DIMM.
        idle_power_per_device_w: Background (idle + refresh) power per DIMM.
        dvfs_coupling: Fraction of dynamic memory power that scales with
            core speed (see module docstring), in ``[0, 1]``.
    """

    devices: int
    capacity_per_device_bytes: int
    max_dynamic_power_per_device_w: float
    idle_power_per_device_w: float
    dvfs_coupling: float = 0.4

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ConfigurationError("a node needs at least one memory device")
        if self.capacity_per_device_bytes <= 0:
            raise ConfigurationError("memory capacity must be positive")
        if self.max_dynamic_power_per_device_w < 0:
            raise ConfigurationError("memory dynamic power must be non-negative")
        if self.idle_power_per_device_w < 0:
            raise ConfigurationError("memory idle power must be non-negative")
        if not 0.0 <= self.dvfs_coupling <= 1.0:
            raise ConfigurationError("dvfs_coupling must lie in [0, 1]")

    @classmethod
    def tianhe_ddr3(cls) -> "MemorySpec":
        """6 × 4 GB DDR3-1333 RDIMMs per socket pair, as in §V.A.

        The paper's nodes carry 6 DIMMs per processor; with two processors
        that is 12 devices and 48 GB per node.  (The text says each
        processor is configured with 6 devices of 4 GB.)
        """
        return cls(
            devices=12,
            capacity_per_device_bytes=gib(4),
            max_dynamic_power_per_device_w=3.0,
            idle_power_per_device_w=1.5,
            dvfs_coupling=0.4,
        )

    @property
    def total_capacity_bytes(self) -> int:
        """Aggregate memory capacity of the node, bytes."""
        return self.devices * self.capacity_per_device_bytes

    @property
    def total_idle_power_w(self) -> float:
        """Aggregate background memory power, watts (part of node idle)."""
        return self.devices * self.idle_power_per_device_w

    @property
    def max_dynamic_power_w(self) -> float:
        """Aggregate peak dynamic memory power at the top level, watts."""
        return self.devices * self.max_dynamic_power_per_device_w

    def dynamic_power_per_level(self, dvfs: DvfsTable) -> np.ndarray:
        """``P_mem(l)`` for every level of ``dvfs``, watts."""
        speed = np.asarray(dvfs.speed(np.arange(dvfs.num_levels)), dtype=np.float64)
        factor = (1.0 - self.dvfs_coupling) + self.dvfs_coupling * speed
        return self.max_dynamic_power_w * factor
