"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream callers can catch the whole family with a
single ``except`` clause while still distinguishing configuration mistakes
(:class:`ConfigurationError`), violations of simulator invariants
(:class:`SimulationError`) and misuse of the power-management API
(:class:`PowerManagementError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "FaultInjectionError",
    "SimulationError",
    "SchedulingError",
    "AllocationError",
    "PowerManagementError",
    "PolicyError",
    "DegradedModeError",
    "TelemetryError",
    "WorkloadError",
    "MetricError",
    "ObservabilityError",
]

#: Appended to every unknown-preset error (fault, corruption and
#: provision scenarios alike) so users discover the catalogue command.
PRESET_HINT = "run `repro list-presets` for the catalogue"


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object failed validation.

    Raised eagerly at construction time (all config dataclasses validate in
    ``__post_init__``) so that a bad parameter fails fast rather than
    corrupting a multi-hour simulation half-way through.
    """


class FaultInjectionError(ConfigurationError):
    """A fault-injection scenario or fault model failed validation.

    Raised eagerly when a :class:`repro.faults.FaultScenario` (or one of
    the fault models built from it) is constructed with an out-of-range
    rate or duration, so a malformed robustness experiment fails fast
    rather than silently injecting the wrong fault process.
    """


class SimulationError(ReproError, RuntimeError):
    """An invariant of the discrete-event simulation kernel was violated.

    Examples: scheduling an event in the past, stepping a finished engine,
    or re-entrant calls into :meth:`repro.sim.engine.SimulationEngine.run`.
    """


class SchedulingError(ReproError, RuntimeError):
    """The batch scheduler was driven into an invalid state.

    Examples: completing a job that was never started, or submitting the
    same job object twice.
    """


class AllocationError(SchedulingError):
    """A node allocation request could not be honoured.

    Raised when a job requests more processes than the cluster has cores,
    i.e. the request can *never* be satisfied (requests that merely have to
    wait are queued, not errored).
    """


class PowerManagementError(ReproError, RuntimeError):
    """The power manager or capping algorithm was misused.

    Examples: running a control cycle before the manager is attached to a
    cluster, or actuating a DVFS level outside the node's frequency table.
    """


class PolicyError(PowerManagementError):
    """A target-set selection policy failed or was configured incorrectly.

    Also raised by the policy registry on lookup of an unknown policy name.
    """


class DegradedModeError(PowerManagementError):
    """The degraded-mode control path was driven without any usable input.

    Raised when every sensing channel is gone at once — the system meter
    is out *and* no telemetry (not even a last-known-good cache) exists
    to fall back on — so the fail-safe ladder has no basis for a
    Formula (1) estimate.  By construction this cannot happen with a
    non-empty candidate set (the collector primes its cache at deploy
    time), so it indicates a wiring bug and must not be silently
    ignored.
    """


class TelemetryError(ReproError, RuntimeError):
    """Telemetry collection failed (unknown node, agent not sampled yet)."""


class WorkloadError(ReproError, ValueError):
    """A workload definition is malformed.

    Examples: a job with zero processes, an application profile with no
    phases, or a phase with utilisation outside ``[0, 1]``.
    """


class MetricError(ReproError, ValueError):
    """A metric was evaluated on invalid input.

    Examples: ΔP×T over an empty trace, or Performance(cap) with mismatched
    baseline/capped job sets.
    """


class ObservabilityError(ReproError, RuntimeError):
    """The observability layer was misused.

    Examples: ending a span that is not the innermost open one, closing
    a cycle with child spans still open, or registering two metrics of
    different kinds under the same name.
    """
