"""Cycle tracing: nested spans with deterministic sim-time timestamps.

Each control cycle the instrumented :class:`~repro.core.manager.
PowerManager` opens one root ``cycle`` span and a child span per phase
(``collect`` → ``estimate`` → ``classify`` → ``select_targets`` →
``actuate`` → ``journal``).  Spans carry *simulated* timestamps only —
never the host wall clock — plus explicit attributes (power, state,
thresholds, target-set size, fencing epoch, degraded flags), so two runs
from the same seed emit byte-identical traces.

Within one cycle every span shares the cycle's sim time; ordering is
carried by a monotone per-tracer sequence number instead of sub-cycle
timestamps, which keeps the trace deterministic and free of wall-clock
reads (reprolint RL102).

A disabled tracer is a shared no-op: :meth:`CycleTracer.begin_cycle`
returns the null span and :meth:`CycleTracer.span` a reusable null
context manager, so the instrumented call sites cost one attribute check
and a handful of no-op method calls per cycle.
"""

from __future__ import annotations

from typing import Callable, Iterator, Union

from repro.errors import ObservabilityError
from repro.types import Seconds

__all__ = ["AttrValue", "Span", "SpanHandle", "CycleTracer", "NULL_SPAN"]

#: Values a span attribute may carry (JSON scalars only, so the trace
#: serializes canonically).
AttrValue = Union[bool, int, float, str, None]


class Span:
    """One node of a cycle's span tree.

    Attributes are insertion-ordered (Python dict semantics), which the
    JSONL exporters rely on for byte-stable output.
    """

    __slots__ = ("name", "time", "seq", "attrs", "_children", "open")

    def __init__(self, name: str, time: Seconds, seq: int) -> None:
        self.name = name
        self.time = time
        self.seq = seq
        self.attrs: dict[str, AttrValue] = {}
        # Lazily created: most spans are leaves, and the tracer runs
        # once per control cycle — every allocation counts.
        self._children: list[Span] | None = None
        self.open = True

    @property
    def children(self) -> list["Span"]:
        """Child spans in open order (empty for a leaf)."""
        return self._children if self._children is not None else []

    def set(self, key: str, value: AttrValue) -> None:
        """Attach one attribute (overwrites a previous value)."""
        self.attrs[key] = value

    def set_many(self, **attrs: AttrValue) -> None:
        """Attach several attributes at once."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, object]:
        """The span tree as JSON-ready nested dicts (deterministic order)."""
        record: dict[str, object] = {
            "name": self.name,
            "t": self.time,
            "seq": self.seq,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self._children:
            record["children"] = [c.to_dict() for c in self._children]
        return record

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first pre-order."""
        yield self
        if self._children:
            for child in self._children:
                yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} t={self.time} seq={self.seq} "
            f"children={len(self.children)}>"
        )


class _NullSpan(Span):
    """The shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("", 0.0, -1)
        self.open = False

    def set(self, key: str, value: AttrValue) -> None:
        return None

    def set_many(self, **attrs: AttrValue) -> None:
        return None


#: The span a disabled tracer hands out everywhere.
NULL_SPAN: Span = _NullSpan()


class SpanHandle:
    """Context manager produced by :meth:`CycleTracer.span`.

    One shared handle per tracer, rebound on every :meth:`CycleTracer.
    span` call — the hot path allocates nothing per span.  ``__enter__``
    binds the span that was just opened; ``__exit__`` closes the
    innermost open span, which under ``with`` discipline (LIFO) is
    always the right one.  Enter a handle immediately — holding it
    across another ``span()`` call rebinds it.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "CycleTracer | None", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(
        self, exc_type: object, exc: object, tb: object
    ) -> None:
        tracer = self._tracer
        if tracer is None:
            return
        stack = tracer._stack
        if len(stack) <= 1:
            raise ObservabilityError(
                "span exit with no open child span (exited twice?)"
            )
        child = stack.pop()
        child.open = False


_NULL_HANDLE = SpanHandle(None, NULL_SPAN)


class CycleTracer:
    """Builds one span tree per control cycle and feeds it to sinks.

    Args:
        enabled: A disabled tracer performs no work and hands out the
            shared null span / null context manager.
        sinks: Callables receiving each completed cycle's root span
            (the flight recorder's ring append, the in-memory whole-run
            trace, ...).  More can be attached with :meth:`add_sink`.
    """

    def __init__(
        self,
        enabled: bool = True,
        sinks: tuple[Callable[[Span], None], ...] = (),
    ) -> None:
        self.enabled = enabled
        self._sinks: list[Callable[[Span], None]] = list(sinks)
        self._stack: list[Span] = []
        self._seq = 0
        self._cycles_traced = 0
        self._handle = SpanHandle(self, NULL_SPAN)
        self._free: list[Span] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of currently open spans (0 between cycles)."""
        return len(self._stack)

    @property
    def cycles_traced(self) -> int:
        """Completed cycle span trees emitted so far."""
        return self._cycles_traced

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        """Attach another consumer of completed cycle spans."""
        self._sinks.append(sink)

    def recycle(self, root: Span) -> None:
        """Return a completed cycle tree to the allocation pool.

        Steady-state tracing then allocates (almost) nothing per cycle:
        :meth:`begin_cycle` and :meth:`span` reuse the pooled spans —
        and their attrs dicts and children lists — instead of building
        fresh ones, which also keeps the garbage collector quiet (no
        per-cycle promotion churn from trees retained by the flight
        ring).  The caller must guarantee nothing still references any
        span in the tree; the facade only recycles trees evicted from
        the flight-recorder ring when no whole-run trace is retained.
        """
        if not self.enabled:
            return
        pending = [root]
        free = self._free
        while pending:
            span = pending.pop()
            span.attrs.clear()
            kids = span._children
            if kids:
                pending.extend(kids)
                kids.clear()
            free.append(span)

    def _new_span(self, name: str, time: Seconds, seq: int) -> Span:
        free = self._free
        if free:
            span = free.pop()
            span.name = name
            span.time = time
            span.seq = seq
            span.open = True
            return span
        return Span(name, time, seq)

    # ------------------------------------------------------------------
    # Building the tree
    # ------------------------------------------------------------------
    def begin_cycle(self, now: Seconds) -> Span:
        """Open the root span of one control cycle.

        Raises:
            ObservabilityError: if the previous cycle was never ended.
        """
        if not self.enabled:
            return NULL_SPAN
        if self._stack:
            raise ObservabilityError(
                "begin_cycle with a span still open; end_cycle first"
            )
        root = self._new_span("cycle", now, self._seq)
        self._seq += 1
        self._stack.append(root)
        return root

    def span(self, name: str) -> SpanHandle:
        """Open a child span of the innermost open span (context manager)."""
        if not self.enabled:
            return _NULL_HANDLE
        handle = self._handle
        handle._span = self.open_span(name)
        return handle

    def open_span(self, name: str) -> Span:
        """Open a child span without a context manager (hot path).

        Identical to :meth:`span` but returns the :class:`Span` itself;
        the caller closes it with :meth:`close_span`.  The instrumented
        control loop uses this form — guarded by one ``if tracing:``
        check — so a disabled tracer costs literally nothing there, and
        an enabled one skips the ``with``-protocol dispatch.  Exception
        safety comes from :meth:`abort_cycle` in the loop's handler,
        not from ``finally`` blocks.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack
        if not stack:
            raise ObservabilityError(
                f"span {name!r} opened outside a cycle; begin_cycle first"
            )
        child = self._new_span(name, stack[0].time, self._seq)
        self._seq += 1
        parent = stack[-1]
        if parent._children is None:
            parent._children = [child]
        else:
            parent._children.append(child)
        stack.append(child)
        return child

    def close_span(self) -> None:
        """Close the innermost open span (pair of :meth:`open_span`).

        Raises:
            ObservabilityError: if only the root (or nothing) is open.
        """
        if not self.enabled:
            return
        stack = self._stack
        if len(stack) <= 1:
            raise ObservabilityError(
                "close_span with no open child span (closed twice?)"
            )
        child = stack.pop()
        child.open = False

    def end_span(self, span: Span) -> None:
        """Close ``span``; it must be the innermost open span.

        Raises:
            ObservabilityError: on out-of-order closing.
        """
        if not self.enabled:
            return
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"end_span({span.name!r}) out of order: innermost open "
                "span differs"
            )
        span.open = False
        self._stack.pop()

    def abort_cycle(self) -> None:
        """Discard the open cycle (exception unwound mid-cycle).

        Closes every open span without delivering anything to sinks and
        without counting the cycle, so the next :meth:`begin_cycle`
        starts clean.  A no-op when no cycle is open.
        """
        if not self.enabled:
            return
        while self._stack:
            self._stack.pop().open = False

    def end_cycle(self) -> Span | None:
        """Close the root span and deliver the tree to every sink.

        Returns the completed root span (``None`` when disabled).

        Raises:
            ObservabilityError: if child spans are still open, or no
                cycle was begun.
        """
        if not self.enabled:
            return None
        if not self._stack:
            raise ObservabilityError("end_cycle without begin_cycle")
        if len(self._stack) > 1:
            names = ", ".join(s.name for s in self._stack[1:])
            raise ObservabilityError(
                f"end_cycle with child spans still open: {names}"
            )
        root = self._stack.pop()
        root.open = False
        self._cycles_traced += 1
        for sink in self._sinks:
            sink(root)
        return root


#: The shared disabled tracer (no allocation per run).
NULL_TRACER = CycleTracer(enabled=False)
