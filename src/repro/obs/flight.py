"""The flight recorder: a bounded ring of the last N cycle records.

Like an aircraft flight recorder, the ring holds the most recent ``N``
control cycles' span trees (as JSON-ready dicts).  When a trigger trips
— fault onset, controller crash, failover, red-state entry, or the end
of the run — the recorder snapshots the ring into a **dump**: the
trigger's reason and sim time plus the buffered cycles, serialized as
JSON lines by :func:`repro.obs.export.write_flight_jsonl`.

The ring never exceeds its capacity (the oldest cycle is evicted on
overflow) and dumps are cheap snapshots — the ring keeps recording
through and after a dump, so two triggers in close succession each
capture their own view of the recent past.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.types import Seconds

__all__ = ["FlightDump", "FlightRecorder"]


@dataclass(frozen=True)
class FlightDump:
    """One tripped dump: why, when, and the buffered cycle records."""

    reason: str
    time: Seconds
    records: tuple[dict[str, object], ...]


class FlightRecorder:
    """Bounded ring buffer of cycle records with snapshot-on-trigger.

    Recording is the hot path (once per control cycle), so the ring
    holds whatever object the caller hands it and serialization is
    deferred to :meth:`trip` time — dumps are rare, cycles are not.

    Args:
        capacity: Maximum cycles held (the last N); must be positive —
            use :data:`NULL_FLIGHT_RECORDER` (or ``ObsConfig`` with
            ``flight_recorder_cycles=0``) to disable recording.
        serializer: Applied to each buffered record when a dump trips
            (e.g. ``Span.to_dict``); ``None`` stores JSON-ready dicts
            directly.
    """

    def __init__(
        self,
        capacity: int,
        serializer: Callable[[object], dict[str, object]] | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                "flight-recorder capacity must be >= 1 cycle"
            )
        self._ring: deque[object] = deque(maxlen=capacity)
        self._capacity = int(capacity)
        self._serializer = serializer
        self._recorded = 0
        self._dumps: list[FlightDump] = []
        self.enabled = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Ring capacity in cycles."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded_total(self) -> int:
        """Cycles ever recorded (evicted ones included)."""
        return self._recorded

    @property
    def dumps(self) -> tuple[FlightDump, ...]:
        """Every dump tripped so far, in trip order."""
        return tuple(self._dumps)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, cycle_record: object) -> object | None:
        """Append one cycle record, evicting the oldest at capacity.

        Returns the evicted record (``None`` below capacity) so the
        caller can pool it — the tracer recycles evicted span trees.
        """
        ring = self._ring
        evicted: object | None = None
        if len(ring) == self._capacity:
            evicted = ring.popleft()
        ring.append(cycle_record)
        self._recorded += 1
        return evicted

    def snapshot(self) -> tuple[dict[str, object], ...]:
        """The buffered records, serialized, oldest first.

        Does not clear the ring.
        """
        serializer = self._serializer
        if serializer is None:
            return tuple(self._ring)  # type: ignore[arg-type]
        return tuple(serializer(r) for r in self._ring)

    def trip(self, reason: str, now: Seconds) -> FlightDump:
        """Snapshot the ring into a dump tagged ``reason`` at ``now``."""
        dump = FlightDump(reason=reason, time=float(now), records=self.snapshot())
        self._dumps.append(dump)
        return dump


class _NullFlightRecorder(FlightRecorder):
    """The shared do-nothing recorder wired when the ring is disabled."""

    def __init__(self) -> None:
        super().__init__(capacity=1)
        self.enabled = False

    def record(self, cycle_record: object) -> object | None:
        return None

    def trip(self, reason: str, now: Seconds) -> FlightDump:
        return FlightDump(reason=reason, time=float(now), records=())


#: The shared disabled flight recorder.
NULL_FLIGHT_RECORDER: FlightRecorder = _NullFlightRecorder()
