"""The observability facade wired through the control loop.

One :class:`Observability` object bundles the three instruments behind
a single :class:`~repro.obs.config.ObsConfig`:

* :attr:`Observability.tracer` — the per-cycle span tracer;
* :attr:`Observability.metrics` — the metric registry;
* :attr:`Observability.flight` — the flight-recorder ring buffer.

Every instrumented subsystem takes an ``obs`` argument defaulting to
``None`` and resolves it with :func:`resolve_obs`, which substitutes the
shared disabled facade — so un-instrumented construction (tests,
benchmarks, library users) costs nothing and changes nothing.
"""

from __future__ import annotations

from repro.obs.config import ObsConfig
from repro.obs.export import (
    write_flight_jsonl,
    write_metrics_prometheus,
    write_trace_jsonl,
)
from repro.obs.flight import NULL_FLIGHT_RECORDER, FlightDump, FlightRecorder
from repro.obs.metrics import NULL_REGISTRY, MetricRegistry
from repro.obs.trace import NULL_TRACER, CycleTracer, Span
from repro.types import Seconds

__all__ = ["Observability", "resolve_obs"]


class Observability:
    """All observability instruments of one run, behind one config.

    Args:
        config: What to switch on; ``None`` disables everything.
    """

    def __init__(self, config: ObsConfig | None = None) -> None:
        self.config = config if config is not None else ObsConfig()
        cfg = self.config
        #: Whole-run cycle span trees (populated only when ``cfg.trace``).
        self.spans: list[Span] = []
        if cfg.flight_recorder_cycles > 0:
            # The ring buffers Span objects and serializes only when a
            # dump trips — recording must stay cheap every cycle.
            self.flight: FlightRecorder = FlightRecorder(
                cfg.flight_recorder_cycles,
                serializer=lambda span: span.to_dict(),  # type: ignore[attr-defined]
            )
        else:
            self.flight = NULL_FLIGHT_RECORDER
        if cfg.tracing:
            self.tracer = CycleTracer(enabled=True)
            if cfg.trace:
                self.tracer.add_sink(self.spans.append)
                if self.flight.enabled:
                    self.tracer.add_sink(self.flight.record)
            elif self.flight.enabled:
                # Ring-only mode: nothing outside the ring retains the
                # trees, so spans evicted from the ring go back to the
                # tracer's pool and steady-state tracing allocates
                # (almost) nothing.  Dumps are immune — they serialize
                # at trip time, before eviction can touch their cycles.
                flight = self.flight
                tracer = self.tracer

                def _record_and_recycle(root: Span) -> None:
                    evicted = flight.record(root)
                    if evicted is not None:
                        tracer.recycle(evicted)  # type: ignore[arg-type]

                self.tracer.add_sink(_record_and_recycle)
        else:
            self.tracer = NULL_TRACER
        self.metrics = (
            MetricRegistry(enabled=True) if cfg.metrics else NULL_REGISTRY
        )

    # ------------------------------------------------------------------
    # Cheap mode flags for hot-path guards
    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        """Whether span trees are being built this run."""
        return self.tracer.enabled

    @property
    def metrics_on(self) -> bool:
        """Whether the metric registry is live this run."""
        return self.metrics.enabled

    @property
    def enabled(self) -> bool:
        """Whether any instrument is live this run."""
        return self.tracer.enabled or self.metrics.enabled

    # ------------------------------------------------------------------
    # Flight-recorder triggers
    # ------------------------------------------------------------------
    def trip(self, reason: str, now: Seconds) -> FlightDump | None:
        """Trip the flight recorder (no-op when the ring is disabled)."""
        if not self.flight.enabled:
            return None
        return self.flight.trip(reason, now)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self) -> list[str]:
        """Write every configured output file; returns the paths written."""
        written: list[str] = []
        cfg = self.config
        if cfg.trace_path is not None:
            write_trace_jsonl(self.spans, cfg.trace_path)
            written.append(cfg.trace_path)
        if cfg.metrics_path is not None:
            write_metrics_prometheus(self.metrics, cfg.metrics_path)
            written.append(cfg.metrics_path)
        if cfg.flight_path is not None:
            write_flight_jsonl(self.flight.dumps, cfg.flight_path)
            written.append(cfg.flight_path)
        return written

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared everything-off facade (no allocation)."""
        return _NULL_OBS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Observability trace={self.config.trace} "
            f"metrics={self.config.metrics} "
            f"flight={self.config.flight_recorder_cycles}>"
        )


_NULL_OBS = Observability(ObsConfig())


def resolve_obs(obs: "Observability | None") -> "Observability":
    """``obs`` itself, or the shared disabled facade for ``None``."""
    return obs if obs is not None else _NULL_OBS
