"""The metric registry: counters, gauges and histograms.

Two kinds of instrument coexist:

* **inline** instruments (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) are created once at wiring time and updated from
  the hot path (``counter.inc()`` per cycle);
* **collected** instruments (:meth:`MetricRegistry.counter_func` /
  :meth:`MetricRegistry.gauge_func`) register a zero-argument callable
  that is evaluated only at export time.  Subsystems that already keep
  monotone counters (the actuator's command statistics, the collector's
  drop counts, the journal's record totals) are mirrored this way, so
  instrumenting them costs *nothing* per cycle and the exported value
  can never drift from the source of truth.

A disabled registry hands out shared no-op instruments and ignores
callback registrations, so the disabled path is a handful of no-op
method calls per cycle.

Export is Prometheus text exposition (:meth:`MetricRegistry.
to_prometheus_text`) with families sorted by name and series by label
value — deterministic byte-for-byte for a deterministic run.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]

#: A frozen, sorted label set — part of a series' identity.
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def _fmt_value(value: float) -> str:
    """Prometheus sample-value formatting (integers without '.0')."""
    f = float(value)
    if f.is_integer() and abs(f) < 1e12:
        return str(int(f))
    return repr(f)


def _fmt_labels(labels: _LabelKey) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in labels:
        escaped = (
            value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current count."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count.

        Raises:
            ObservabilityError: on a negative increment — counters are
                monotone by contract.
        """
        if amount < 0:
            raise ObservabilityError(
                f"counter increment must be non-negative, got {amount}"
            )
        self._value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current level."""
        return self._value

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics).

    Args:
        buckets: Ascending finite upper bounds; a ``+Inf`` bucket is
            implicit.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        if not buckets:
            raise ObservabilityError("histogram needs at least one bucket")
        if any(b >= a for b, a in zip(buckets, buckets[1:])):
            raise ObservabilityError("histogram buckets must be ascending")
        self._bounds = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(buckets) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0

    @property
    def bounds(self) -> tuple[float, ...]:
        """The finite bucket upper bounds."""
        return self._bounds

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        self._sum += v
        self._count += 1
        for i, bound in enumerate(self._bounds):
            if v <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    def cumulative_counts(self) -> tuple[int, ...]:
        """Cumulative per-bucket counts, ending with the +Inf bucket."""
        out: list[int] = []
        running = 0
        for c in self._counts:
            running += c
            out.append(running)
        return tuple(out)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__((1.0,))

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

#: Kinds a family can have (fixed at first registration).
_KINDS = ("counter", "gauge", "histogram")


class MetricRegistry:
    """Named metric families with labelled series.

    A series' identity is ``(name, sorted labels)``; registering the
    same identity twice returns the existing instrument (inline kinds)
    or rebinds the callback (collected kinds — the HA layer re-registers
    a successor manager's collector after failover).  Registering one
    name under two different kinds raises.

    Args:
        enabled: A disabled registry hands out shared no-op instruments
            and ignores callbacks.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._inline: dict[tuple[str, _LabelKey], Counter | Gauge | Histogram] = {}
        self._collected: dict[tuple[str, _LabelKey], Callable[[], float]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help_: str, labels: Mapping[str, str] | None = None
    ) -> Counter:
        """Get or create the counter series ``(name, labels)``."""
        if not self.enabled:
            return _NULL_COUNTER
        inst = self._register(name, help_, "counter", labels, lambda: Counter())
        assert isinstance(inst, Counter)
        return inst

    def gauge(
        self, name: str, help_: str, labels: Mapping[str, str] | None = None
    ) -> Gauge:
        """Get or create the gauge series ``(name, labels)``."""
        if not self.enabled:
            return _NULL_GAUGE
        inst = self._register(name, help_, "gauge", labels, lambda: Gauge())
        assert isinstance(inst, Gauge)
        return inst

    def histogram(
        self,
        name: str,
        help_: str,
        buckets: tuple[float, ...],
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        """Get or create the histogram series ``(name, labels)``."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        inst = self._register(
            name, help_, "histogram", labels, lambda: Histogram(buckets)
        )
        assert isinstance(inst, Histogram)
        return inst

    def counter_func(
        self,
        name: str,
        help_: str,
        fn: Callable[[], float],
        labels: Mapping[str, str] | None = None,
    ) -> None:
        """Register (or rebind) a counter collected at export time."""
        self._register_collected(name, help_, "counter", fn, labels)

    def gauge_func(
        self,
        name: str,
        help_: str,
        fn: Callable[[], float],
        labels: Mapping[str, str] | None = None,
    ) -> None:
        """Register (or rebind) a gauge collected at export time."""
        self._register_collected(name, help_, "gauge", fn, labels)

    def _check_kind(self, name: str, kind: str, help_: str) -> None:
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
            self._help[name] = help_
        elif known != kind:
            raise ObservabilityError(
                f"metric {name!r} already registered as {known}, not {kind}"
            )

    def _register(
        self,
        name: str,
        help_: str,
        kind: str,
        labels: Mapping[str, str] | None,
        make: Callable[[], Counter | Gauge | Histogram],
    ) -> Counter | Gauge | Histogram:
        self._check_kind(name, kind, help_)
        key = (name, _label_key(labels))
        if key in self._collected:
            raise ObservabilityError(
                f"metric series {name!r}{dict(key[1])!r} is already a "
                "collected (callback) series"
            )
        inst = self._inline.get(key)
        if inst is None:
            inst = make()
            self._inline[key] = inst
        return inst

    def _register_collected(
        self,
        name: str,
        help_: str,
        kind: str,
        fn: Callable[[], float],
        labels: Mapping[str, str] | None,
    ) -> None:
        if not self.enabled:
            return
        self._check_kind(name, kind, help_)
        key = (name, _label_key(labels))
        if key in self._inline:
            raise ObservabilityError(
                f"metric series {name!r}{dict(key[1])!r} is already an "
                "inline series"
            )
        # Rebinding is deliberate: after a failover the successor's
        # subsystems take over the series.
        self._collected[key] = fn

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Registered family names, sorted."""
        return sorted(self._kinds)

    def kind(self, name: str) -> str | None:
        """The family's kind, or None if unknown."""
        return self._kinds.get(name)

    def value_of(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float:
        """Current value of one counter/gauge series.

        Raises:
            ObservabilityError: for an unknown series or a histogram.
        """
        key = (name, _label_key(labels))
        fn = self._collected.get(key)
        if fn is not None:
            return float(fn())
        inst = self._inline.get(key)
        if isinstance(inst, (Counter, Gauge)):
            return inst.value
        raise ObservabilityError(
            f"no scalar metric series {name!r} with labels {dict(_label_key(labels))!r}"
        )

    def collect(self) -> dict[str, dict[_LabelKey, float]]:
        """Every scalar series' current value, family → labels → value."""
        out: dict[str, dict[_LabelKey, float]] = {}
        for (name, labels), inst in self._inline.items():
            if isinstance(inst, (Counter, Gauge)):
                out.setdefault(name, {})[labels] = inst.value
        for (name, labels), fn in self._collected.items():
            out.setdefault(name, {})[labels] = float(fn())
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_prometheus_text(self) -> str:
        """Prometheus text exposition of every registered series."""
        lines: list[str] = []
        collected = self.collect()
        for name in self.names():
            kind = self._kinds[name]
            lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} {kind}")
            if kind == "histogram":
                for (n, labels), inst in sorted(
                    self._inline.items(), key=lambda kv: kv[0]
                ):
                    if n != name or not isinstance(inst, Histogram):
                        continue
                    cumulative = inst.cumulative_counts()
                    for bound, count in zip(inst.bounds, cumulative):
                        lab = (*labels, ("le", _fmt_value(bound)))
                        lines.append(f"{name}_bucket{_fmt_labels(lab)} {count}")
                    lab = (*labels, ("le", "+Inf"))
                    lines.append(
                        f"{name}_bucket{_fmt_labels(lab)} {cumulative[-1]}"
                    )
                    lines.append(
                        f"{name}_sum{_fmt_labels(labels)} "
                        f"{_fmt_value(inst.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_fmt_labels(labels)} {inst.count}"
                    )
            else:
                for labels in sorted(collected.get(name, {})):
                    value = collected[name][labels]
                    lines.append(
                        f"{name}{_fmt_labels(labels)} {_fmt_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


#: The shared disabled registry.
NULL_REGISTRY = MetricRegistry(enabled=False)
