"""Observability: cycle tracing, metric registry, flight recorder.

The paper evaluates its capping architecture by *replaying* what the
controller saw and did (§V's figures are all traces); this package makes
the reproduction itself observable the same way, without perturbing it:

* :class:`~repro.obs.trace.CycleTracer` — one nested span tree per
  control cycle (``cycle`` → ``collect`` / ``estimate`` / ``classify``
  / ``select_targets`` / ``actuate`` / ``journal``) with *sim-time*
  timestamps only, so traces from one seed are byte-identical;
* :class:`~repro.obs.metrics.MetricRegistry` — counters, gauges and
  histograms (cycles by color, DVFS transitions, fenced rejections,
  LKG cache age, retry counts), exported as Prometheus text; existing
  subsystem statistics are mirrored by export-time callbacks with zero
  per-cycle cost;
* :class:`~repro.obs.flight.FlightRecorder` — a bounded ring of the
  last N cycles, dumped as JSON lines when a trigger trips (fault
  onset, controller crash, failover, red-state entry, end of run).

Everything hangs off one :class:`~repro.obs.config.ObsConfig` carried by
an :class:`~repro.obs.facade.Observability` facade; disabled (the
default) the instrumented call sites degrade to shared no-op singletons
and the control loop's decisions are unchanged bit for bit.
"""

from repro.obs.config import ObsConfig
from repro.obs.export import (
    flight_jsonl_lines,
    jsonl_line,
    trace_jsonl_lines,
    write_flight_jsonl,
    write_metrics_prometheus,
    write_trace_jsonl,
)
from repro.obs.facade import Observability, resolve_obs
from repro.obs.flight import NULL_FLIGHT_RECORDER, FlightDump, FlightRecorder
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    AttrValue,
    CycleTracer,
    Span,
    SpanHandle,
)

__all__ = [
    "AttrValue",
    "Counter",
    "CycleTracer",
    "FlightDump",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_FLIGHT_RECORDER",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "ObsConfig",
    "Observability",
    "Span",
    "SpanHandle",
    "flight_jsonl_lines",
    "jsonl_line",
    "resolve_obs",
    "trace_jsonl_lines",
    "write_flight_jsonl",
    "write_metrics_prometheus",
    "write_trace_jsonl",
]
