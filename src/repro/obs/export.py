"""Exporters: trace JSONL, flight-recorder JSONL, Prometheus text.

All exporters are deterministic byte-for-byte for a deterministic run:
JSON objects keep the span/dict insertion order (no key sorting needed),
floats serialize via ``repr`` (shortest round-trip), timestamps are sim
time, and files are written with ``\\n`` newlines regardless of
platform.  The golden-trace regression test stands on exactly this.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.flight import FlightDump
from repro.obs.metrics import MetricRegistry
from repro.obs.trace import Span

__all__ = [
    "jsonl_line",
    "trace_jsonl_lines",
    "write_trace_jsonl",
    "flight_jsonl_lines",
    "write_flight_jsonl",
    "write_metrics_prometheus",
]


def jsonl_line(record: dict[str, object]) -> str:
    """One compact, deterministic JSON line (no trailing newline)."""
    return json.dumps(record, separators=(",", ":"), allow_nan=False)


def trace_jsonl_lines(spans: Iterable[Span]) -> list[str]:
    """One JSON line per cycle root span."""
    return [jsonl_line(span.to_dict()) for span in spans]


def write_trace_jsonl(spans: Iterable[Span], path: str | Path) -> int:
    """Write the whole-run trace as JSON lines; returns lines written."""
    lines = trace_jsonl_lines(spans)
    _write_lines(path, lines)
    return len(lines)


def flight_jsonl_lines(dumps: Iterable[FlightDump]) -> list[str]:
    """Serialize flight-recorder dumps as JSON lines.

    Each dump contributes a header line (``event: "dump"`` with the
    trigger reason, sim time and buffered-cycle count) followed by one
    ``event: "cycle"`` line per buffered cycle, oldest first.
    """
    lines: list[str] = []
    for dump in dumps:
        lines.append(
            jsonl_line(
                {
                    "event": "dump",
                    "reason": dump.reason,
                    "t": dump.time,
                    "cycles": len(dump.records),
                }
            )
        )
        for record in dump.records:
            lines.append(jsonl_line({"event": "cycle", **record}))
    return lines


def write_flight_jsonl(
    dumps: Iterable[FlightDump], path: str | Path
) -> int:
    """Write flight-recorder dumps as JSON lines; returns lines written."""
    lines = flight_jsonl_lines(dumps)
    _write_lines(path, lines)
    return len(lines)


def write_metrics_prometheus(
    registry: MetricRegistry, path: str | Path
) -> None:
    """Write the registry's Prometheus text exposition to ``path``."""
    Path(path).write_text(registry.to_prometheus_text(), encoding="utf-8")


def _write_lines(path: str | Path, lines: list[str]) -> None:
    text = "".join(line + "\n" for line in lines)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(text)
