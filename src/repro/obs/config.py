"""Configuration of the observability layer.

One :class:`ObsConfig` switches every instrument the simulator carries —
the per-cycle span tracer, the metric registry and the flight-recorder
ring buffer — and names the files the run's exporters write.  The
default configuration disables everything; a disabled layer is wired
through the control loop as shared no-op objects, so a run with the
default config is bit-for-bit (and, within measurement noise,
cycle-time-for-cycle-time) the uninstrumented run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ObsConfig"]


@dataclass(frozen=True)
class ObsConfig:
    """All knobs of the observability layer.

    Args:
        trace: Keep the full run's cycle span trees in memory and allow
            exporting them as JSON lines (see
            :func:`repro.obs.export.write_trace_jsonl`).
        metrics: Maintain the metric registry (counters, gauges,
            histograms; exported as Prometheus text).
        flight_recorder_cycles: Capacity ``N`` of the flight-recorder
            ring buffer, in control cycles; ``0`` disables the recorder.
            The last ``N`` cycle records are dumped whenever a trigger
            trips (fault onset, failover, red-state entry) and once at
            the end of the run.
        trace_path: File the whole-run trace JSONL is written to
            (``None`` = keep in memory only).
        metrics_path: File the Prometheus text exposition is written to.
        flight_path: File the flight-recorder dumps are written to.
    """

    trace: bool = False
    metrics: bool = False
    flight_recorder_cycles: int = 0
    trace_path: str | None = None
    metrics_path: str | None = None
    flight_path: str | None = None

    def __post_init__(self) -> None:
        if self.flight_recorder_cycles < 0:
            raise ConfigurationError(
                "flight_recorder_cycles must be non-negative"
            )
        if self.trace_path is not None and not self.trace:
            raise ConfigurationError("trace_path requires trace=True")
        if self.metrics_path is not None and not self.metrics:
            raise ConfigurationError("metrics_path requires metrics=True")
        if self.flight_path is not None and self.flight_recorder_cycles == 0:
            raise ConfigurationError(
                "flight_path requires flight_recorder_cycles > 0"
            )

    @property
    def tracing(self) -> bool:
        """Whether cycle span trees must be built at all.

        The flight recorder stores serialized cycle spans, so tracing
        machinery runs when either the whole-run trace or the ring
        buffer is on.
        """
        return self.trace or self.flight_recorder_cycles > 0

    @property
    def enabled(self) -> bool:
        """Whether any instrument is switched on."""
        return self.tracing or self.metrics

    @classmethod
    def off(cls) -> "ObsConfig":
        """The default: everything disabled."""
        return cls()

    @classmethod
    def full(
        cls,
        flight_recorder_cycles: int = 64,
        trace_path: str | None = None,
        metrics_path: str | None = None,
        flight_path: str | None = None,
    ) -> "ObsConfig":
        """Everything on — the debugging configuration."""
        return cls(
            trace=True,
            metrics=True,
            flight_recorder_cycles=flight_recorder_cycles,
            trace_path=trace_path,
            metrics_path=metrics_path,
            flight_path=flight_path,
        )
