"""Queue-filling policies.

Three ways to keep the scheduler supplied with work:

* :class:`KeepQueueFilledFeeder` — the paper's §V.C rule: *"An evaluation
  job is added to the job queue whenever the queue is empty"*, drawing
  from the random generator.  This keeps the machine near saturation and
  produces the open-ended 12-hour streams of the evaluation.
* :class:`TraceFeeder` — replays a recorded :class:`~repro.workload.trace.JobTrace`
  at its submit times, for exactly-repeatable cross-policy comparisons.
* :class:`ListFeeder` — submits a fixed list of jobs immediately
  (closed workload; useful in tests and micro-experiments).

A feeder exposes one method, ``poll(now, queue)``, called by the scheduler
at the start of every tick, which pushes any arrivals due by ``now``.
"""

from __future__ import annotations

from typing import Protocol

from repro.scheduler.queue import JobQueue
from repro.workload.generator import RandomJobGenerator
from repro.workload.job import Job
from repro.workload.trace import JobTrace

__all__ = [
    "Feeder",
    "KeepQueueFilledFeeder",
    "TraceFeeder",
    "ListFeeder",
]


class Feeder(Protocol):
    """Anything that can top up the job queue each tick."""

    def poll(self, now: float, queue: JobQueue) -> None:
        """Push arrivals due at or before ``now`` into ``queue``."""
        ...  # pragma: no cover - protocol stub

    def exhausted(self) -> bool:
        """Whether no further jobs will ever arrive."""
        ...  # pragma: no cover - protocol stub


class KeepQueueFilledFeeder:
    """The paper's feeder: generate one job whenever the queue is empty."""

    def __init__(self, generator: RandomJobGenerator) -> None:
        self._generator = generator

    def poll(self, now: float, queue: JobQueue) -> None:
        if not queue:
            queue.push(self._generator.next_job(submit_time=now))

    def exhausted(self) -> bool:
        """An open stream never runs dry."""
        return False


class TraceFeeder:
    """Replays a recorded trace at its submit timestamps."""

    def __init__(self, trace: JobTrace, runtime_scale: float = 1.0) -> None:
        self._jobs = trace.to_jobs(runtime_scale=runtime_scale)
        self._cursor = 0

    def poll(self, now: float, queue: JobQueue) -> None:
        while self._cursor < len(self._jobs):
            job = self._jobs[self._cursor]
            if job.submit_time > now:
                break
            queue.push(job)
            self._cursor += 1

    def exhausted(self) -> bool:
        return self._cursor >= len(self._jobs)

    @property
    def remaining(self) -> int:
        """Arrivals not yet released to the queue."""
        return len(self._jobs) - self._cursor


class ListFeeder:
    """Submits a fixed list of jobs at their submit times (closed list)."""

    def __init__(self, jobs: list[Job]) -> None:
        self._jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        self._cursor = 0

    def poll(self, now: float, queue: JobQueue) -> None:
        while self._cursor < len(self._jobs):
            job = self._jobs[self._cursor]
            if job.submit_time > now:
                break
            queue.push(job)
            self._cursor += 1

    def exhausted(self) -> bool:
        return self._cursor >= len(self._jobs)
