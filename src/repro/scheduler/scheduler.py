"""The tick-driven batch scheduler.

:class:`BatchScheduler` owns the job lifecycle: it polls its feeder for
arrivals, starts queued jobs FCFS as soon as enough whole nodes are idle,
advances running jobs through the :class:`~repro.workload.executor.JobExecutor`,
and retires completions (releasing their nodes).  It is driven by a single
``tick(now, dt)`` call per control interval, normally wired to a
:class:`~repro.sim.process.PeriodicTask` by the experiment harness.

Ordering within one tick matters and is fixed as:

1. **advance** running jobs by ``dt`` (work happens during the interval
   that just elapsed);
2. **retire** jobs that finished during the interval (their nodes become
   idle at the tick boundary);
3. **poll** the feeder (the §V.C rule tops the queue up *after* it may
   have been emptied by starts in the previous tick);
4. **start** queued jobs FCFS while the head job fits.

Strict FCFS (no backfill) matches the paper's minimal launcher; a head
job too big for the currently idle nodes blocks the queue until
completions free enough nodes.

The power-emergency ladder (:mod:`repro.provision.emergency`) drives the
extra transitions: :meth:`BatchScheduler.suspend_job` /
:meth:`~BatchScheduler.resume_job` freeze and thaw a running job in
place, :meth:`~BatchScheduler.kill_job` terminates one whose rack
blacked out, and :meth:`~BatchScheduler.take_offline` /
:meth:`~BatchScheduler.bring_online` fence nodes out of (and back into)
the allocation pool without touching the cluster state.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.errors import SchedulingError
from repro.obs.facade import Observability, resolve_obs
from repro.scheduler.allocator import NodeAllocator
from repro.scheduler.feeder import Feeder
from repro.scheduler.queue import JobQueue
from repro.workload.executor import JobExecutor
from repro.workload.job import Job, JobState

__all__ = ["BatchScheduler"]


class BatchScheduler:
    """FCFS whole-node scheduler over a simulated cluster.

    Args:
        cluster: The machine.
        executor: Advances running jobs and writes their load.
        feeder: Supplies arrivals (see :mod:`repro.scheduler.feeder`).
        obs: Observability facade; when its metric registry is live the
            job-lifecycle statistics are mirrored as collected series.
    """

    def __init__(
        self,
        cluster: Cluster,
        executor: JobExecutor,
        feeder: Feeder,
        obs: Observability | None = None,
    ) -> None:
        self._cluster = cluster
        self._executor = executor
        self._feeder = feeder
        self._allocator = NodeAllocator(cluster)
        self._queue = JobQueue()
        self._running: dict[int, Job] = {}
        self._finished: list[Job] = []
        self._killed: list[Job] = []
        self._started_count = 0
        self._suspend_count = 0
        self._resume_count = 0
        self._offline = np.zeros(cluster.num_nodes, dtype=bool)
        self._register_metrics(resolve_obs(obs))

    def _register_metrics(self, obs: Observability) -> None:
        """Mirror job-lifecycle statistics as collected metric series."""
        if not obs.metrics_on:
            return
        reg = obs.metrics
        reg.counter_func(
            "repro_jobs_started_total",
            "Jobs ever started",
            lambda: float(self._started_count),
        )
        reg.counter_func(
            "repro_jobs_finished_total",
            "Jobs completed so far",
            lambda: float(len(self._finished)),
        )
        reg.gauge_func(
            "repro_jobs_running",
            "Jobs currently running",
            lambda: float(len(self._running)),
        )
        reg.gauge_func(
            "repro_queue_depth",
            "Jobs waiting in the scheduler queue",
            lambda: float(len(self._queue)),
        )
        reg.gauge_func(
            "repro_jobs_suspended",
            "Jobs currently suspended by the power-emergency ladder",
            lambda: float(len(self.suspended_jobs)),
        )
        reg.gauge_func(
            "repro_nodes_offline",
            "Nodes fenced out of the allocation pool",
            lambda: float(self._offline.sum()),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue(self) -> JobQueue:
        """The pending-job queue."""
        return self._queue

    @property
    def running_jobs(self) -> list[Job]:
        """Currently active (running or suspended) jobs, insertion order."""
        return list(self._running.values())

    @property
    def suspended_jobs(self) -> list[Job]:
        """Currently suspended jobs, insertion order."""
        return [
            j for j in self._running.values() if j.state is JobState.SUSPENDED
        ]

    @property
    def finished_jobs(self) -> list[Job]:
        """Jobs completed so far, in completion order."""
        return list(self._finished)

    @property
    def killed_jobs(self) -> list[Job]:
        """Jobs terminated by blackouts, in kill order."""
        return list(self._killed)

    @property
    def started_count(self) -> int:
        """Number of jobs ever started."""
        return self._started_count

    @property
    def suspend_count(self) -> int:
        """Number of suspend transitions performed."""
        return self._suspend_count

    @property
    def resume_count(self) -> int:
        """Number of resume transitions performed."""
        return self._resume_count

    @property
    def offline_mask(self) -> np.ndarray:
        """Boolean mask of nodes fenced out of the allocation pool (copy)."""
        return self._offline.copy()

    @property
    def cluster_state(self) -> ClusterState:
        """The live cluster state the scheduler allocates over."""
        return self._cluster.state

    def job_nodes(self, job_id: int) -> np.ndarray:
        """Nodes of a running job.

        Raises:
            SchedulingError: if the job is not running.
        """
        job = self._running.get(job_id)
        if job is None:
            raise SchedulingError(f"job {job_id} is not running")
        return job.nodes

    def running_job(self, job_id: int) -> Job:
        """The running job with ``job_id``.

        Raises:
            SchedulingError: if the job is not running.
        """
        job = self._running.get(job_id)
        if job is None:
            raise SchedulingError(f"job {job_id} is not running")
        return job

    def idle(self) -> bool:
        """True when nothing is queued or running and the feeder is dry."""
        return (
            not self._queue and not self._running and self._feeder.exhausted()
        )

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def tick(self, now: float, dt: float) -> list[Job]:
        """Run one scheduling interval ending at ``now``.

        Args:
            now: Simulated time at the *end* of the interval (the tick
                instant); work advanced during ``[now - dt, now]``.
            dt: Interval length, seconds.

        Returns:
            Jobs that finished during this interval.
        """
        finished_now = self._advance_and_retire(now, dt)
        self._feeder.poll(now, self._queue)
        self._start_fcfs(now)
        return finished_now

    def _advance_and_retire(self, now: float, dt: float) -> list[Job]:
        notices = self._executor.advance(
            list(self._running.values()), now - dt, dt
        )
        finished_now: list[Job] = []
        for notice in notices:
            job = notice.job
            job.finish(notice.finish_time)
            self._cluster.state.release_job(job.nodes)
            del self._running[job.job_id]
            self._finished.append(job)
            finished_now.append(job)
        return finished_now

    def _start_fcfs(self, now: float) -> None:
        blocked = self._offline if self._offline.any() else None
        while self._queue:
            head = self._queue.peek()
            nodes = self._allocator.try_allocate(head.nprocs, blocked=blocked)
            if nodes is None:
                break  # strict FCFS: the head blocks the queue
            job = self._queue.pop()
            self._cluster.state.assign_job(nodes, job.job_id)
            job.start(now, nodes)
            self._running[job.job_id] = job
            self._started_count += 1
            # §V.C: the queue is refilled the moment it empties, so a
            # start that drained it triggers an immediate top-up (the new
            # job may itself start this very tick if nodes remain).
            self._feeder.poll(now, self._queue)

    # ------------------------------------------------------------------
    # Job-state transitions for power management
    # ------------------------------------------------------------------
    def all_jobs(self) -> list[Job]:
        """Every job known: queued + active + finished + killed."""
        return (
            list(self._queue)
            + list(self._running.values())
            + self._finished
            + self._killed
        )

    # ------------------------------------------------------------------
    # Power-emergency transitions (repro.provision.emergency)
    # ------------------------------------------------------------------
    def suspend_job(self, job_id: int, now: float) -> None:
        """Suspend a running job in place: progress freezes, its nodes'
        load drops to idle, but the nodes stay assigned (the job resumes
        where it stopped, on the same nodes).

        Raises:
            SchedulingError: if the job is not active.
        """
        job = self.running_job(job_id)
        job.suspend(now)
        self._cluster.state.set_load(job.nodes, 0.0, 0.0, 0.0)
        self._suspend_count += 1

    def resume_job(self, job_id: int, now: float) -> bool:
        """Resume a suspended job; the executor re-applies its load on
        the next tick.  Returns False (no-op) if the job is gone or its
        nodes are fenced offline — e.g. the rack blacked out while it
        was suspended."""
        job = self._running.get(job_id)
        if job is None or job.state is not JobState.SUSPENDED:
            return False
        if bool(self._offline[job.nodes].any()):
            return False
        job.resume(now)
        self._resume_count += 1
        return True

    def kill_job(self, job_id: int, now: float) -> None:
        """Terminate an active job (its rack blacked out) and release
        its nodes; the job never counts as finished.

        Raises:
            SchedulingError: if the job is not active.
        """
        job = self.running_job(job_id)
        job.kill(now)
        self._cluster.state.release_job(job.nodes)
        del self._running[job.job_id]
        self._killed.append(job)

    def take_offline(self, node_ids: np.ndarray, now: float) -> None:
        """Fence nodes out of the allocation pool (shed or blacked out).

        Purely a scheduler-side fence: the cluster state is untouched,
        already-assigned jobs keep their nodes (blackout victims are
        killed separately by the emergency response).
        """
        self._offline[np.asarray(node_ids, dtype=np.int64)] = True

    def bring_online(self, node_ids: np.ndarray) -> None:
        """Re-admit fenced nodes into the allocation pool."""
        self._offline[np.asarray(node_ids, dtype=np.int64)] = False
