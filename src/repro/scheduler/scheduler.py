"""The tick-driven batch scheduler.

:class:`BatchScheduler` owns the job lifecycle: it polls its feeder for
arrivals, starts queued jobs FCFS as soon as enough whole nodes are idle,
advances running jobs through the :class:`~repro.workload.executor.JobExecutor`,
and retires completions (releasing their nodes).  It is driven by a single
``tick(now, dt)`` call per control interval, normally wired to a
:class:`~repro.sim.process.PeriodicTask` by the experiment harness.

Ordering within one tick matters and is fixed as:

1. **advance** running jobs by ``dt`` (work happens during the interval
   that just elapsed);
2. **retire** jobs that finished during the interval (their nodes become
   idle at the tick boundary);
3. **poll** the feeder (the §V.C rule tops the queue up *after* it may
   have been emptied by starts in the previous tick);
4. **start** queued jobs FCFS while the head job fits.

Strict FCFS (no backfill) matches the paper's minimal launcher; a head
job too big for the currently idle nodes blocks the queue until
completions free enough nodes.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import SchedulingError
from repro.obs.facade import Observability, resolve_obs
from repro.scheduler.allocator import NodeAllocator
from repro.scheduler.feeder import Feeder
from repro.scheduler.queue import JobQueue
from repro.workload.executor import JobExecutor
from repro.workload.job import Job, JobState

__all__ = ["BatchScheduler"]


class BatchScheduler:
    """FCFS whole-node scheduler over a simulated cluster.

    Args:
        cluster: The machine.
        executor: Advances running jobs and writes their load.
        feeder: Supplies arrivals (see :mod:`repro.scheduler.feeder`).
        obs: Observability facade; when its metric registry is live the
            job-lifecycle statistics are mirrored as collected series.
    """

    def __init__(
        self,
        cluster: Cluster,
        executor: JobExecutor,
        feeder: Feeder,
        obs: Observability | None = None,
    ) -> None:
        self._cluster = cluster
        self._executor = executor
        self._feeder = feeder
        self._allocator = NodeAllocator(cluster)
        self._queue = JobQueue()
        self._running: dict[int, Job] = {}
        self._finished: list[Job] = []
        self._started_count = 0
        self._register_metrics(resolve_obs(obs))

    def _register_metrics(self, obs: Observability) -> None:
        """Mirror job-lifecycle statistics as collected metric series."""
        if not obs.metrics_on:
            return
        reg = obs.metrics
        reg.counter_func(
            "repro_jobs_started_total",
            "Jobs ever started",
            lambda: float(self._started_count),
        )
        reg.counter_func(
            "repro_jobs_finished_total",
            "Jobs completed so far",
            lambda: float(len(self._finished)),
        )
        reg.gauge_func(
            "repro_jobs_running",
            "Jobs currently running",
            lambda: float(len(self._running)),
        )
        reg.gauge_func(
            "repro_queue_depth",
            "Jobs waiting in the scheduler queue",
            lambda: float(len(self._queue)),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue(self) -> JobQueue:
        """The pending-job queue."""
        return self._queue

    @property
    def running_jobs(self) -> list[Job]:
        """Currently running jobs (insertion order)."""
        return list(self._running.values())

    @property
    def finished_jobs(self) -> list[Job]:
        """Jobs completed so far, in completion order."""
        return list(self._finished)

    @property
    def started_count(self) -> int:
        """Number of jobs ever started."""
        return self._started_count

    def job_nodes(self, job_id: int) -> np.ndarray:
        """Nodes of a running job.

        Raises:
            SchedulingError: if the job is not running.
        """
        job = self._running.get(job_id)
        if job is None:
            raise SchedulingError(f"job {job_id} is not running")
        return job.nodes

    def running_job(self, job_id: int) -> Job:
        """The running job with ``job_id``.

        Raises:
            SchedulingError: if the job is not running.
        """
        job = self._running.get(job_id)
        if job is None:
            raise SchedulingError(f"job {job_id} is not running")
        return job

    def idle(self) -> bool:
        """True when nothing is queued or running and the feeder is dry."""
        return (
            not self._queue and not self._running and self._feeder.exhausted()
        )

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def tick(self, now: float, dt: float) -> list[Job]:
        """Run one scheduling interval ending at ``now``.

        Args:
            now: Simulated time at the *end* of the interval (the tick
                instant); work advanced during ``[now - dt, now]``.
            dt: Interval length, seconds.

        Returns:
            Jobs that finished during this interval.
        """
        finished_now = self._advance_and_retire(now, dt)
        self._feeder.poll(now, self._queue)
        self._start_fcfs(now)
        return finished_now

    def _advance_and_retire(self, now: float, dt: float) -> list[Job]:
        notices = self._executor.advance(
            list(self._running.values()), now - dt, dt
        )
        finished_now: list[Job] = []
        for notice in notices:
            job = notice.job
            job.finish(notice.finish_time)
            self._cluster.state.release_job(job.nodes)
            del self._running[job.job_id]
            self._finished.append(job)
            finished_now.append(job)
        return finished_now

    def _start_fcfs(self, now: float) -> None:
        while self._queue:
            head = self._queue.peek()
            nodes = self._allocator.try_allocate(head.nprocs)
            if nodes is None:
                break  # strict FCFS: the head blocks the queue
            job = self._queue.pop()
            self._cluster.state.assign_job(nodes, job.job_id)
            job.start(now, nodes)
            self._running[job.job_id] = job
            self._started_count += 1
            # §V.C: the queue is refilled the moment it empties, so a
            # start that drained it triggers an immediate top-up (the new
            # job may itself start this very tick if nodes remain).
            self._feeder.poll(now, self._queue)

    # ------------------------------------------------------------------
    # Job-state transitions for power management
    # ------------------------------------------------------------------
    def all_jobs(self) -> list[Job]:
        """Every job known: queued + running + finished."""
        return list(self._queue) + list(self._running.values()) + self._finished
