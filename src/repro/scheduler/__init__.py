"""Batch scheduler substrate: queue, allocator, feeders and the scheduler.

The paper's evaluation drives its cluster with a minimal batch system
(§V.C): a FIFO queue that is topped up with one random job whenever it
empties, and jobs that start "as soon as the required hardware resource is
available".  This package reproduces that system and nothing more
elaborate — the power-capping architecture is scheduler-agnostic, and the
simple feeder is what produces the near-saturated, spiky load profile the
capping experiments need.

* :mod:`repro.scheduler.queue` — FIFO job queue;
* :mod:`repro.scheduler.allocator` — whole-node first-fit allocation;
* :mod:`repro.scheduler.feeder` — queue-filling policies (§V.C keep-one,
  trace replay, closed-list);
* :mod:`repro.scheduler.scheduler` — the tick-driven ``BatchScheduler``
  that glues queue, allocator and the job executor together.
"""

from repro.scheduler.allocator import NodeAllocator
from repro.scheduler.backfill import BackfillScheduler
from repro.scheduler.feeder import (
    KeepQueueFilledFeeder,
    ListFeeder,
    TraceFeeder,
)
from repro.scheduler.queue import JobQueue
from repro.scheduler.scheduler import BatchScheduler

__all__ = [
    "BackfillScheduler",
    "BatchScheduler",
    "JobQueue",
    "KeepQueueFilledFeeder",
    "ListFeeder",
    "NodeAllocator",
    "TraceFeeder",
]
