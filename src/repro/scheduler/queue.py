"""FIFO job queue.

Plain first-come-first-served ordering, as in the paper's evaluation
harness.  The queue refuses duplicate job objects and only accepts
PENDING jobs, which catches scheduler bookkeeping bugs early.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.errors import SchedulingError
from repro.workload.job import Job, JobState

__all__ = ["JobQueue"]


class JobQueue:
    """A FIFO queue of pending jobs."""

    def __init__(self) -> None:
        self._queue: deque[Job] = deque()
        self._ids: set[int] = set()
        self._total_enqueued = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[Job]:
        """Iterate queued jobs head-first (inspection only)."""
        return iter(self._queue)

    @property
    def total_enqueued(self) -> int:
        """Jobs ever pushed (queue throughput counter)."""
        return self._total_enqueued

    def push(self, job: Job) -> None:
        """Append a PENDING job to the tail.

        Raises:
            SchedulingError: for non-pending jobs or duplicates.
        """
        if job.state is not JobState.PENDING:
            raise SchedulingError(
                f"job {job.job_id} is {job.state.value}, cannot enqueue"
            )
        if job.job_id in self._ids:
            raise SchedulingError(f"job {job.job_id} enqueued twice")
        self._queue.append(job)
        self._ids.add(job.job_id)
        self._total_enqueued += 1

    def peek(self) -> Job:
        """The head job without removing it.

        Raises:
            SchedulingError: on an empty queue.
        """
        if not self._queue:
            raise SchedulingError("peek into an empty job queue")
        return self._queue[0]

    def pop(self) -> Job:
        """Remove and return the head job.

        Raises:
            SchedulingError: on an empty queue.
        """
        if not self._queue:
            raise SchedulingError("pop from an empty job queue")
        job = self._queue.popleft()
        self._ids.discard(job.job_id)
        return job

    def remove(self, job_id: int) -> Job:
        """Remove a job from anywhere in the queue (backfill support).

        Raises:
            SchedulingError: if no queued job has ``job_id``.
        """
        if job_id not in self._ids:
            raise SchedulingError(f"job {job_id} is not queued")
        for index, job in enumerate(self._queue):
            if job.job_id == job_id:
                del self._queue[index]
                self._ids.discard(job_id)
                return job
        raise SchedulingError(f"job {job_id} missing despite index")  # pragma: no cover
