"""Whole-node first-fit allocation.

The paper's launcher places one MPI process per core and hands out whole
nodes.  The allocator therefore converts a process count into a node count
(ceiling division by cores-per-node) and picks the lowest-numbered idle
nodes — deterministic, which keeps experiment runs reproducible.

Release is performed by the scheduler through
:meth:`repro.cluster.state.ClusterState.release_job`; the allocator is
stateless and reads occupancy straight from the cluster state, so the two
can never disagree.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import AllocationError

__all__ = ["NodeAllocator"]


class NodeAllocator:
    """First-fit whole-node allocator over a cluster's live state."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster

    def nodes_needed(self, nprocs: int) -> int:
        """Whole nodes required for ``nprocs`` one-per-core processes."""
        return self._cluster.nodes_for_processes(nprocs)

    def can_ever_fit(self, nprocs: int) -> bool:
        """Whether the request fits an *empty* cluster at all."""
        return self.nodes_needed(nprocs) <= self._cluster.num_nodes

    def try_allocate(
        self, nprocs: int, blocked: np.ndarray | None = None
    ) -> np.ndarray | None:
        """Idle nodes for the request, or ``None`` if it must wait.

        Args:
            nprocs: One-per-core process count to place.
            blocked: Optional boolean mask of nodes that must not be
                allocated even though idle (offline/shed/blacked-out —
                see :meth:`repro.scheduler.scheduler.BatchScheduler.take_offline`).

        Raises:
            AllocationError: if the request exceeds the whole cluster
                (it could never be satisfied, so queueing it would wedge
                a FIFO scheduler forever).
        """
        needed = self.nodes_needed(nprocs)
        if needed > self._cluster.num_nodes:
            raise AllocationError(
                f"request for {nprocs} processes needs {needed} nodes; "
                f"cluster has {self._cluster.num_nodes}"
            )
        if blocked is None:
            idle = self._cluster.state.idle_nodes()
        else:
            mask = self._cluster.state.idle_mask() & ~np.asarray(
                blocked, dtype=bool
            )
            idle = np.flatnonzero(mask).astype(np.int64)
        if len(idle) < needed:
            return None
        return idle[:needed]

    def free_nodes(self) -> int:
        """Current number of idle nodes."""
        return int(self._cluster.state.idle_mask().sum())
