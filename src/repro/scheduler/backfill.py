"""EASY backfill: an optional upgrade over the paper's strict FCFS.

The paper's launcher is strict FCFS ("loaded to the system as soon as
the required hardware resource is available"): a wide job at the head
blocks everything behind it and drains the machine, which both wastes
cycles and produces artificial power troughs.  EASY (aggressive)
backfill is the standard fix: while the head job waits, later jobs may
jump ahead *iff* they cannot delay the head's earliest possible start.

Implementation notes:

* the head's *reservation* is computed from the running jobs' estimated
  completion times; estimates use nominal runtimes (the simulator's
  ground truth at full frequency, i.e. slightly optimistic under
  capping — exactly the situation a real EASY scheduler with user
  estimates faces, so capping-induced stretch exercises the reservation
  logic realistically);
* a candidate backfills if (a) enough nodes are idle now, and (b) its
  estimated completion ``now + estimate`` does not exceed the head's
  reservation time, **or** it uses only nodes the head won't need
  (the standard spare-node condition collapses to a count comparison on
  a homogeneous whole-node machine).

The class is a drop-in replacement for
:class:`~repro.scheduler.scheduler.BatchScheduler` (same ``tick``
contract); the ablation bench compares power behaviour under both.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.obs.facade import Observability, resolve_obs
from repro.scheduler.feeder import Feeder
from repro.scheduler.scheduler import BatchScheduler
from repro.workload.executor import JobExecutor
from repro.workload.job import Job

__all__ = ["BackfillScheduler"]


class BackfillScheduler(BatchScheduler):
    """FCFS with EASY (reservation-preserving) backfill."""

    def __init__(
        self,
        cluster: Cluster,
        executor: JobExecutor,
        feeder: Feeder,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(cluster, executor, feeder, obs=obs)
        self._backfilled_count = 0
        resolved = resolve_obs(obs)
        if resolved.metrics_on:
            resolved.metrics.counter_func(
                "repro_jobs_backfilled_total",
                "Jobs started out of FIFO order by the backfill rule",
                lambda: float(self._backfilled_count),
            )

    @property
    def backfilled_count(self) -> int:
        """Jobs started out of FIFO order by the backfill rule."""
        return self._backfilled_count

    # ------------------------------------------------------------------
    # Scheduling override
    # ------------------------------------------------------------------
    def _start_fcfs(self, now: float) -> None:
        # First run the plain FCFS pass (starts the head while it fits).
        super()._start_fcfs(now)
        if not self._queue:
            return
        head = self._queue.peek()
        head_nodes_needed = self._allocator.nodes_needed(head.nprocs)
        reservation = self._head_reservation_time(now, head_nodes_needed)
        if reservation is None:
            return  # head can never start; nothing to protect

        # Try to backfill the remaining queued jobs in FIFO order.
        for job in list(self._queue)[1:]:
            needed = self._allocator.nodes_needed(job.nprocs)
            idle = self._allocator.free_nodes()
            if needed > idle:
                continue
            spare_now = idle - head_nodes_needed
            fits_beside_head = needed <= spare_now
            finishes_in_time = now + job.remaining_work_s <= reservation + 1e-9
            if not (fits_beside_head or finishes_in_time):
                continue
            self._start_out_of_order(job, now)

    def _head_reservation_time(
        self, now: float, head_nodes_needed: int
    ) -> float | None:
        """Earliest time the head is guaranteed its nodes.

        Walks running jobs in estimated-completion order, releasing
        their nodes onto the idle pool until the head fits.
        """
        idle = self._allocator.free_nodes()
        if idle >= head_nodes_needed:
            return now
        completions = sorted(
            (self._estimated_completion(job, now), len(job.nodes))
            for job in self._running.values()
        )
        freed = idle
        for time, width in completions:
            freed += width
            if freed >= head_nodes_needed:
                return time
        return None

    @staticmethod
    def _estimated_completion(job: Job, now: float) -> float:
        """Optimistic completion estimate: remaining work at full speed."""
        return now + job.remaining_work_s

    def _start_out_of_order(self, job: Job, now: float) -> None:
        nodes = self._allocator.try_allocate(job.nprocs)
        if nodes is None:  # raced with another backfill in this pass
            return
        self._queue.remove(job.job_id)
        self._cluster.state.assign_job(nodes, job.job_id)
        job.start(now, nodes)
        self._running[job.job_id] = job
        self._started_count += 1
        self._backfilled_count += 1
        self._feeder.poll(now, self._queue)
