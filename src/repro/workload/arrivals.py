"""Poisson (open-system) job arrivals.

The paper's feeder keeps the queue topped up (a *closed* driving rule
that saturates the machine).  Real facilities see an *open* stream:
jobs arrive on their own clock regardless of machine state, so load
oscillates — quiet nights, Monday-morning bursts.  The
:class:`PoissonFeeder` models that with exponential inter-arrival times,
which provides the workload substrate for two studies the closed feeder
cannot express:

* utilisation-dependent capping behaviour (the architecture should stay
  silent on a half-empty machine — only the excursions matter);
* queueing-delay impact of capping (throttled jobs hold nodes longer,
  pushing waiting times up at high arrival rates).

Arrival times are pre-drawn lazily from the feeder's own stream, so the
sequence is deterministic per seed and — like the generator — identical
across policy runs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.scheduler.queue import JobQueue
from repro.workload.generator import RandomJobGenerator

__all__ = ["PoissonFeeder"]


class PoissonFeeder:
    """Open-system feeder: jobs arrive at exponential intervals.

    Args:
        generator: Draws each arriving job's (application, NPROCS).
        rng: Random stream for the inter-arrival draws (use a *different*
            named stream than the generator's so arrival timing and job
            identity stay independently reproducible).
        rate_per_s: Mean arrivals per simulated second (λ).
        start_time: Time of the first exponential draw's origin.
    """

    def __init__(
        self,
        generator: RandomJobGenerator,
        rng: np.random.Generator,
        rate_per_s: float,
        start_time: float = 0.0,
    ) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self._generator = generator
        self._rng = rng
        self._rate = float(rate_per_s)
        self._next_arrival = float(start_time) + float(
            rng.exponential(1.0 / rate_per_s)
        )
        self._arrivals = 0

    @property
    def arrivals(self) -> int:
        """Jobs released so far."""
        return self._arrivals

    @property
    def next_arrival_time(self) -> float:
        """When the next job will arrive (simulated seconds)."""
        return self._next_arrival

    def poll(self, now: float, queue: JobQueue) -> None:
        """Release every arrival due at or before ``now``."""
        while self._next_arrival <= now:
            job = self._generator.next_job(submit_time=self._next_arrival)
            queue.push(job)
            self._arrivals += 1
            self._next_arrival += float(self._rng.exponential(1.0 / self._rate))

    def exhausted(self) -> bool:
        """An open stream never runs dry."""
        return False
