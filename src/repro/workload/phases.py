"""Phase records and cyclic phase schedules.

An HPC application alternates between qualitatively different regimes —
dense compute, memory-bound sweeps, communication/synchronisation — and
each regime has a distinct power signature.  A :class:`Phase` captures one
regime; a :class:`PhaseSchedule` strings phases into a cycle that repeats
until the job's total work is done.

Phases live in the *work* domain, not the time domain: a phase covers a
fixed share of the job's work, and how long it takes in wall-clock depends
on the DVFS levels of the job's nodes (see :mod:`repro.workload.scaling`).
That is what makes capping stretch runtimes instead of cutting work.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import WorkloadError

__all__ = ["Phase", "PhaseSchedule"]


@dataclass(frozen=True)
class Phase:
    """One regime of an application's execution cycle.

    Args:
        name: Label ("compute", "exchange", …) for traces and debugging.
        work_share: Fraction of one *cycle*'s work spent in this phase;
            shares within a schedule are normalised, so any positive
            weights work.
        cpu_util: CPU utilisation driven while in this phase, [0, 1].
        nic_frac: NIC utilisation (``Data_NIC/(τ·BW)``) while in this
            phase, [0, 1].
        compute_boundness: β — the fraction of this phase's critical path
            that scales with core frequency.  β=1: halving f doubles the
            phase's duration; β=0: frequency-insensitive (pure memory/
            network waiting).
    """

    name: str
    work_share: float
    cpu_util: float
    nic_frac: float
    compute_boundness: float

    def __post_init__(self) -> None:
        if self.work_share <= 0.0:
            raise WorkloadError(f"phase {self.name!r}: work_share must be positive")
        if not 0.0 <= self.cpu_util <= 1.0:
            raise WorkloadError(f"phase {self.name!r}: cpu_util outside [0, 1]")
        if not 0.0 <= self.nic_frac <= 1.0:
            raise WorkloadError(f"phase {self.name!r}: nic_frac outside [0, 1]")
        if not 0.0 <= self.compute_boundness <= 1.0:
            raise WorkloadError(
                f"phase {self.name!r}: compute_boundness outside [0, 1]"
            )


class PhaseSchedule:
    """A normalised cyclic sequence of phases.

    The schedule maps a *cycle position* in ``[0, 1)`` (fraction of one
    cycle's work completed) to the active phase, via binary search over
    cumulative shares.

    Args:
        phases: At least one phase; shares are normalised to sum to 1.
    """

    def __init__(self, phases: tuple[Phase, ...] | list[Phase]) -> None:
        if not phases:
            raise WorkloadError("a schedule needs at least one phase")
        self._phases: tuple[Phase, ...] = tuple(phases)
        total = sum(p.work_share for p in self._phases)
        cum = 0.0
        boundaries: list[float] = []
        for p in self._phases:
            cum += p.work_share / total
            boundaries.append(cum)
        boundaries[-1] = 1.0  # guard against float drift
        self._boundaries = boundaries

    @property
    def phases(self) -> tuple[Phase, ...]:
        """The phases, in cycle order."""
        return self._phases

    def __len__(self) -> int:
        return len(self._phases)

    def phase_at(self, cycle_position: float) -> Phase:
        """The phase active at ``cycle_position`` ∈ [0, 1).

        Positions ≥ 1 wrap around (cyclic).
        """
        pos = cycle_position % 1.0
        index = bisect.bisect_right(self._boundaries, pos)
        if index >= len(self._phases):  # pos landed exactly on 1.0-ε edge
            index = len(self._phases) - 1
        return self._phases[index]

    def mean_cpu_util(self) -> float:
        """Work-share-weighted mean CPU utilisation over one cycle."""
        total = sum(p.work_share for p in self._phases)
        return sum(p.cpu_util * p.work_share for p in self._phases) / total

    def mean_compute_boundness(self) -> float:
        """Work-share-weighted mean β over one cycle."""
        total = sum(p.work_share for p in self._phases)
        return (
            sum(p.compute_boundness * p.work_share for p in self._phases) / total
        )

    def mean_nic_frac(self) -> float:
        """Work-share-weighted mean NIC utilisation over one cycle."""
        total = sum(p.work_share for p in self._phases)
        return sum(p.nic_frac * p.work_share for p in self._phases) / total
