"""Advances running jobs each control tick and drives the cluster state.

# reprolint: hot-path

The executor is the bridge between the workload models and the machine
model.  Once per tick (``dt`` seconds, normally the telemetry/control
interval τ) it, for every running job:

1. looks up the job's current :class:`~repro.workload.phases.Phase` from
   its progress (work-domain phases);
2. computes the job's progress rate from the DVFS levels of its nodes —
   the bulk-synchronous bottleneck model of
   :func:`repro.workload.scaling.job_progress_rate`;
3. advances ``progress_s`` by ``rate · dt`` and detects completion, with
   sub-tick interpolation of the finish instant so an uncapped job's
   measured runtime equals its nominal runtime *exactly* (the CPLJ metric
   depends on that exactness);
4. writes the phase's CPU/NIC signature (with small multiplicative
   jitter, shared across the job's nodes plus per-node noise) and the
   ramping memory footprint into the structure-of-arrays cluster state.

The per-node work is delegated to a
:class:`~repro.cluster.engine.ClusterEngine` — the vector engine batches
every running job's nodes into one array walk; the object engine steps
them one at a time.  Both consume the executor's RNG stream identically,
so the engines are interchangeable bit for bit.

Power consumption itself is *not* computed here — the power model reads
the state this executor wrote, keeping workload and power strictly
layered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.engine import ClusterEngine, get_engine
from repro.cluster.state import ClusterState
from repro.errors import WorkloadError
from repro.workload.job import Job, JobState

__all__ = ["JobExecutor", "FinishedJob"]


@dataclass(frozen=True)
class FinishedJob:
    """A completion notice: which job, and the exact finish instant."""

    job: Job
    finish_time: float


class JobExecutor:
    """Per-tick advancement of running jobs.

    Args:
        state: The cluster state to read levels from and write load into.
        rng: Random generator for load jitter (a named stream).
        util_jitter_std: Std-dev of the multiplicative per-tick jitter
            applied to the phase's CPU/NIC signature (shared by all nodes
            of a job — phases are synchronous).  Set 0 for deterministic
            load.
        node_noise_std: Std-dev of additional per-node multiplicative
            noise (load imbalance).
        modulation_std: Stationary std-dev of the cluster-wide load
            modulation — a slowly-varying AR(1) multiplicative factor
            shared by *all* jobs, modelling correlated demand swings
            (input-dependent intensity, phase alignment across jobs).
            This is what produces the occasional power excursions that
            power capping exists to contain; 0 disables it.
        modulation_tau_s: Correlation time of the modulation process,
            seconds — excursions last on this order.
        engine: Hot-path engine (instance, registry name, or ``None``
            for the default vector engine) that carries out the actual
            per-node stepping.
    """

    def __init__(
        self,
        state: ClusterState,
        rng: np.random.Generator,
        util_jitter_std: float = 0.04,
        node_noise_std: float = 0.02,
        modulation_std: float = 0.08,
        modulation_tau_s: float = 60.0,
        engine: ClusterEngine | str | None = None,
    ) -> None:
        if util_jitter_std < 0 or node_noise_std < 0:
            raise WorkloadError("jitter std-devs must be non-negative")
        if modulation_std < 0:
            raise WorkloadError("modulation_std must be non-negative")
        if modulation_tau_s <= 0:
            raise WorkloadError("modulation_tau_s must be positive")
        self._state = state
        self._rng = rng
        self._util_jitter = float(util_jitter_std)
        self._node_noise = float(node_noise_std)
        self._modulation_std = float(modulation_std)
        self._modulation_tau = float(modulation_tau_s)
        self._modulation = 0.0  # AR(1) state, zero-mean
        self._engine = get_engine(engine)

    @property
    def engine(self) -> ClusterEngine:
        """The hot-path engine stepping this executor's jobs."""
        return self._engine

    @property
    def modulation_factor(self) -> float:
        """Current cluster-wide load multiplier (≈ 1.0 on average)."""
        return min(1.45, max(0.55, 1.0 + self._modulation))

    def advance(self, jobs: list[Job], now: float, dt: float) -> list[FinishedJob]:
        """Advance every RUNNING job in ``jobs`` by one tick.

        Args:
            jobs: Jobs to advance (non-running entries are skipped).
            now: Simulated time at the *start* of the tick.
            dt: Tick length, seconds.

        Returns:
            Completion notices for jobs whose work finished during this
            tick, with interpolated finish instants in ``(now, now+dt]``.
            The executor does **not** transition job state or release
            nodes — the scheduler owns those side effects.
        """
        if dt <= 0:
            raise WorkloadError("tick length must be positive")
        self._step_modulation(dt)
        running = [job for job in jobs if job.state is JobState.RUNNING]
        if not running:
            return []
        return self._engine.step_jobs(
            self._state,
            running,
            now,
            dt,
            self._rng,
            self._util_jitter,
            self._node_noise,
            self.modulation_factor,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _step_modulation(self, dt: float) -> None:
        """Advance the cluster-wide AR(1) load modulation by ``dt``."""
        if self._modulation_std == 0.0:
            return
        rho = float(np.exp(-dt / self._modulation_tau))
        innovation = self._rng.normal(0.0, self._modulation_std)
        self._modulation = rho * self._modulation + (1.0 - rho * rho) ** 0.5 * innovation
