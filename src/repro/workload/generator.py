"""The §V.C random job stream.

    "evaluation jobs were generated at random by first selecting one
    application from the benchmark, and then set the NPROCS parameter at
    random to be one of the values 8, 16, 32, 64, 128 to 256."

:class:`RandomJobGenerator` reproduces exactly that: uniform application
choice, uniform NPROCS choice from the paper's set, monotonically
increasing job ids.  A ``runtime_scale`` knob compresses nominal runtimes
uniformly so tests and CI can run minutes-long experiments with the same
statistical structure as the 12-hour evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.applications import NPB_APPLICATIONS, ApplicationProfile
from repro.workload.job import Job

__all__ = ["RandomJobGenerator", "PAPER_NPROCS_CHOICES"]

#: The paper's NPROCS values (§V.B).
PAPER_NPROCS_CHOICES: tuple[int, ...] = (8, 16, 32, 64, 128, 256)


class RandomJobGenerator:
    """Generates jobs with the paper's random mix.

    Args:
        rng: Random generator (a named stream from
            :class:`repro.sim.random.RandomSource`).
        applications: Candidate applications; defaults to the five NPB
            profiles the paper uses.
        nprocs_choices: Candidate process counts; defaults to the paper's.
        runtime_scale: Multiplier applied to every generated job's
            nominal runtime (via a scaled copy of its profile).  1.0
            reproduces the library profiles; small values (e.g. 0.02)
            give statistically similar but fast experiments.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        applications: list[ApplicationProfile] | None = None,
        nprocs_choices: tuple[int, ...] = PAPER_NPROCS_CHOICES,
        runtime_scale: float = 1.0,
        priority_choices: tuple[int, ...] = (0,),
    ) -> None:
        if runtime_scale <= 0:
            raise ConfigurationError("runtime_scale must be positive")
        if not nprocs_choices:
            raise ConfigurationError("nprocs_choices must be non-empty")
        if any(n < 1 for n in nprocs_choices):
            raise ConfigurationError("nprocs_choices must be positive")
        if not priority_choices:
            raise ConfigurationError("priority_choices must be non-empty")
        apps = (
            list(NPB_APPLICATIONS.values()) if applications is None else applications
        )
        if not apps:
            raise ConfigurationError("applications must be non-empty")
        self._rng = rng
        self._apps = [self._scaled(a, runtime_scale) for a in apps]
        self._nprocs = tuple(nprocs_choices)
        self._priorities = tuple(priority_choices)
        self._priority_by_job: dict[int, int] = {}
        self._next_id = 0

    @staticmethod
    def _scaled(app: ApplicationProfile, scale: float) -> ApplicationProfile:
        if scale == 1.0:
            return app
        return ApplicationProfile(
            name=app.name,
            schedule=app.schedule,
            mem_fraction=app.mem_fraction,
            mem_ramp_s=app.mem_ramp_s * scale,
            ref_nprocs=app.ref_nprocs,
            ref_runtime_s=app.ref_runtime_s * scale,
            scaling_exponent=app.scaling_exponent,
            gflops_per_node=app.gflops_per_node,
        )

    @property
    def generated(self) -> int:
        """Number of jobs produced so far."""
        return self._next_id

    def next_job(self, submit_time: float) -> Job:
        """Draw one job: uniform application × uniform NPROCS (× uniform
        priority class when priority_choices has several entries)."""
        app = self._apps[int(self._rng.integers(0, len(self._apps)))]
        nprocs = int(self._nprocs[int(self._rng.integers(0, len(self._nprocs)))])
        if len(self._priorities) == 1:
            priority = int(self._priorities[0])
        else:
            priority = int(
                self._priorities[int(self._rng.integers(0, len(self._priorities)))]
            )
        job = Job(
            job_id=self._next_id,
            app=app,
            nprocs=nprocs,
            submit_time=float(submit_time),
            priority=priority,
        )
        self._priority_by_job[job.job_id] = priority
        self._next_id += 1
        return job

    def priority_of(self, job_id: int) -> int:
        """Priority class of a previously generated job (0 if unknown —
        a safe default for jobs injected from outside this generator)."""
        return self._priority_by_job.get(int(job_id), 0)
