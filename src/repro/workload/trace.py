"""Record and replay of job arrival traces.

Comparing capping policies fairly requires each run to see the *same* job
stream (the paper runs each policy for 12 hours against statistically
identical load; with a simulator we can do better and replay the identical
stream).  A :class:`JobTrace` is an ordered list of
:class:`TraceRecord` rows and serialises to a line-oriented CSV so traces
can be saved with experiment results and re-run later.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import WorkloadError
from repro.workload.applications import get_application
from repro.workload.job import Job

__all__ = ["TraceRecord", "JobTrace"]

_HEADER = "submit_time,app,nprocs"


@dataclass(frozen=True)
class TraceRecord:
    """One job arrival: when, which application, how many processes."""

    submit_time: float
    app_name: str
    nprocs: int

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise WorkloadError("trace record with negative submit_time")
        if self.nprocs < 1:
            raise WorkloadError("trace record with nprocs < 1")


class JobTrace:
    """An immutable, time-ordered sequence of job arrivals."""

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        recs = list(records)
        for a, b in zip(recs, recs[1:]):
            if b.submit_time < a.submit_time:
                raise WorkloadError("trace records must be time-ordered")
        self._records: tuple[TraceRecord, ...] = tuple(recs)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @classmethod
    def from_jobs(cls, jobs: Iterable[Job]) -> "JobTrace":
        """Build a trace from already-generated jobs (submit order)."""
        recs = [
            TraceRecord(j.submit_time, j.app.name, j.nprocs)
            for j in sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        ]
        return cls(recs)

    def to_jobs(self, runtime_scale: float = 1.0) -> list[Job]:
        """Materialise :class:`Job` objects from the trace.

        Ids are assigned by position.  ``runtime_scale`` compresses
        nominal runtimes exactly as the generator's knob does.
        """
        from repro.workload.generator import RandomJobGenerator

        jobs = []
        for i, rec in enumerate(self._records):
            app = RandomJobGenerator._scaled(
                get_application(rec.app_name), runtime_scale
            )
            jobs.append(
                Job(job_id=i, app=app, nprocs=rec.nprocs, submit_time=rec.submit_time)
            )
        return jobs

    # ------------------------------------------------------------------
    # CSV round-trip
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialise to CSV text (header + one row per arrival)."""
        buf = io.StringIO()
        buf.write(_HEADER + "\n")
        for r in self._records:
            buf.write(f"{r.submit_time!r},{r.app_name},{r.nprocs}\n")
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "JobTrace":
        """Parse the CSV format produced by :meth:`to_csv`."""
        lines = [ln for ln in text.strip().splitlines() if ln.strip()]
        if not lines or lines[0].strip() != _HEADER:
            raise WorkloadError("trace CSV missing header")
        records = []
        for ln in lines[1:]:
            parts = ln.split(",")
            if len(parts) != 3:
                raise WorkloadError(f"malformed trace row: {ln!r}")
            records.append(
                TraceRecord(float(parts[0]), parts[1].strip(), int(parts[2]))
            )
        return cls(records)

    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` as CSV."""
        Path(path).write_text(self.to_csv(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "JobTrace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_csv(Path(path).read_text(encoding="utf-8"))
