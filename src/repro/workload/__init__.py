"""Workload substrate: phase-based models of the NPB evaluation jobs.

The paper evaluates with five NAS Parallel Benchmarks (EP, CG, LU, BT,
SP), class D, at NPROCS ∈ {8, 16, 32, 64, 128, 256} (§V.B).  We cannot run
real MPI binaries inside a simulator, so each application is modelled as
the thing the power-capping architecture actually reacts to — its
*operating-point trajectory*:

* a cyclic sequence of :class:`~repro.workload.phases.Phase` records
  (compute / memory / communication signatures: CPU utilisation, NIC
  rate, per-phase compute-boundness β);
* a steady-state memory footprint as a fraction of node memory;
* a nominal runtime versus process count (strong-scaling law);
* a runtime-stretch model under DVFS (:mod:`repro.workload.scaling`):
  a phase that is β compute-bound slows by ``1/((1−β) + β·f/f_max)``,
  and a well-balanced synchronous job progresses at the rate of its
  *slowest* node — exactly the bottleneck argument §IV.A builds the
  state-based policies on.

Modules:

* :mod:`repro.workload.phases` — phase records and cyclic schedules;
* :mod:`repro.workload.applications` — the NPB profile library;
* :mod:`repro.workload.scaling` — DVFS slowdown and strong-scaling laws;
* :mod:`repro.workload.job` — job lifecycle state;
* :mod:`repro.workload.generator` — the §V.C random job stream;
* :mod:`repro.workload.trace` — record/replay of job arrival traces;
* :mod:`repro.workload.executor` — advances running jobs each control
  tick and writes their load into the cluster state.
"""

from repro.workload.arrivals import PoissonFeeder
from repro.workload.applications import (
    ApplicationProfile,
    NPB_APPLICATIONS,
    get_application,
)
from repro.workload.executor import JobExecutor
from repro.workload.generator import RandomJobGenerator
from repro.workload.job import Job, JobState
from repro.workload.phases import Phase, PhaseSchedule
from repro.workload.scaling import job_progress_rate, node_progress_rate
from repro.workload.trace import JobTrace, TraceRecord

__all__ = [
    "ApplicationProfile",
    "Job",
    "JobExecutor",
    "JobState",
    "JobTrace",
    "NPB_APPLICATIONS",
    "Phase",
    "PoissonFeeder",
    "PhaseSchedule",
    "RandomJobGenerator",
    "TraceRecord",
    "get_application",
    "job_progress_rate",
    "node_progress_rate",
]
