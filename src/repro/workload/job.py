"""Job lifecycle state.

A :class:`Job` moves through ``PENDING → RUNNING → FINISHED``; the
power-emergency ladder adds two side exits — ``RUNNING ⇄ SUSPENDED``
(checkpointed in place, nodes idle but still held) and
``RUNNING/SUSPENDED → KILLED`` (the job's rack blacked out; terminal,
excluded from finished-job metrics).  Besides
identity (application, process count) it records the timestamps and the
progress bookkeeping the metrics need afterwards:

* ``nominal_runtime_s`` — what the job *would* take with every node at
  the top DVFS level (the ``T_j`` of the Performance(cap) metric);
* ``actual runtime`` — ``finish_time − start_time`` (the ``T_cap,j``);
* ``degraded_exposure_s`` — integrated wall-clock during which at least
  one of the job's nodes ran below the top level (used by CPLJ to decide
  whether a job was performance-lossless, and handy for analysis).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.workload.applications import ApplicationProfile

__all__ = ["Job", "JobState"]


class JobState(enum.Enum):
    """Lifecycle states of a job."""

    PENDING = "pending"
    RUNNING = "running"
    SUSPENDED = "suspended"
    FINISHED = "finished"
    KILLED = "killed"


@dataclass
class Job:
    """One evaluation job.

    Args:
        job_id: Unique id assigned by the generator/queue.
        app: The application profile this job runs.
        nprocs: MPI process count (the paper draws from {8 … 256}).
        submit_time: Simulated time the job entered the queue.
    """

    job_id: int
    app: ApplicationProfile
    nprocs: int
    submit_time: float
    #: SLA/priority class: higher = more important.  Only consulted by
    #: priority-aware selection policies (e.g. ``sla``); 0 by default.
    priority: int = 0
    state: JobState = JobState.PENDING
    nodes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    start_time: float | None = None
    finish_time: float | None = None
    #: Work completed so far, in *nominal seconds* (seconds of full-speed
    #: execution).  The job finishes when this reaches nominal_runtime_s.
    progress_s: float = 0.0
    #: Wall-clock seconds during which ≥1 of the job's nodes was degraded.
    degraded_exposure_s: float = 0.0

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise WorkloadError(f"job {self.job_id}: nprocs must be >= 1")
        if self.submit_time < 0:
            raise WorkloadError(f"job {self.job_id}: negative submit_time")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def nominal_runtime_s(self) -> float:
        """``T_j``: runtime at full frequency, seconds."""
        return self.app.nominal_runtime(self.nprocs)

    @property
    def actual_runtime_s(self) -> float:
        """``T_cap,j``: measured runtime, seconds.

        Raises:
            WorkloadError: if the job has not finished.
        """
        if self.state is not JobState.FINISHED:
            raise WorkloadError(f"job {self.job_id} has not finished")
        assert self.start_time is not None and self.finish_time is not None
        return self.finish_time - self.start_time

    @property
    def remaining_work_s(self) -> float:
        """Nominal seconds of work still to do (0 when finished)."""
        return max(0.0, self.nominal_runtime_s - self.progress_s)

    @property
    def cycle_position(self) -> float:
        """Position within the cyclic phase schedule, ∈ [0, 1).

        The job's work is divided into fixed-length cycles; the position
        is the fractional part of progress measured in cycles.  Cycle
        length is chosen as min(nominal/8, 120 s) of nominal work so even
        short jobs traverse several phase cycles.
        """
        cycle = self.cycle_length_s
        return (self.progress_s % cycle) / cycle

    @property
    def cycle_length_s(self) -> float:
        """Nominal work per phase cycle, seconds."""
        return min(self.nominal_runtime_s / 8.0, 120.0)

    @property
    def waiting_time_s(self) -> float:
        """Queue waiting time, seconds (requires the job to have started)."""
        if self.start_time is None:
            raise WorkloadError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    # ------------------------------------------------------------------
    # Lifecycle transitions (driven by the scheduler/executor)
    # ------------------------------------------------------------------
    def start(self, time: float, nodes: np.ndarray) -> None:
        """Transition PENDING → RUNNING on the given nodes."""
        if self.state is not JobState.PENDING:
            raise WorkloadError(f"job {self.job_id} started twice")
        if len(nodes) == 0:
            raise WorkloadError(f"job {self.job_id} started on zero nodes")
        if time < self.submit_time:
            raise WorkloadError(f"job {self.job_id} started before submission")
        self.state = JobState.RUNNING
        self.start_time = float(time)
        self.nodes = np.asarray(nodes, dtype=np.int64).copy()

    def finish(self, time: float) -> None:
        """Transition RUNNING → FINISHED."""
        if self.state is not JobState.RUNNING:
            raise WorkloadError(f"job {self.job_id} finished without running")
        assert self.start_time is not None
        if time < self.start_time:
            raise WorkloadError(f"job {self.job_id} finished before starting")
        self.state = JobState.FINISHED
        self.finish_time = float(time)

    def suspend(self, time: float) -> None:
        """Transition RUNNING → SUSPENDED (checkpoint in place).

        Progress freezes (the executor skips non-running jobs) but the
        job keeps its nodes; wall-clock spent suspended shows up in the
        actual runtime once the job resumes and finishes.
        """
        if self.state is not JobState.RUNNING:
            raise WorkloadError(
                f"job {self.job_id} suspended while {self.state.value}"
            )
        self.state = JobState.SUSPENDED

    def resume(self, time: float) -> None:
        """Transition SUSPENDED → RUNNING."""
        if self.state is not JobState.SUSPENDED:
            raise WorkloadError(
                f"job {self.job_id} resumed while {self.state.value}"
            )
        self.state = JobState.RUNNING

    def kill(self, time: float) -> None:
        """Transition RUNNING/SUSPENDED → KILLED (terminal).

        The power-emergency path uses this when the job's rack blacks
        out; the job never counts as finished.
        """
        if self.state not in (JobState.RUNNING, JobState.SUSPENDED):
            raise WorkloadError(
                f"job {self.job_id} killed while {self.state.value}"
            )
        self.state = JobState.KILLED
        self.finish_time = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Job {self.job_id} {self.app.name} np={self.nprocs} "
            f"{self.state.value}>"
        )
