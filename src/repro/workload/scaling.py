"""DVFS slowdown and job progress-rate models.

**Per-node rate.**  A phase that is β compute-bound on a node running at
relative speed ``s = f/f_max`` progresses at rate::

    r(s, β) = 1 / ((1 − β)/1 + β/s)        (harmonic composition)

i.e. the phase's critical path is a β-weighted mix of frequency-scaled and
frequency-invariant work.  At s=1 the rate is 1; at β=1 the rate equals s;
at β=0 the rate is 1 regardless of frequency.  This is the standard
"roofline" runtime-stretch model used throughout the DVFS literature and
is why capping costs little on memory/communication-bound codes.

**Per-job rate.**  §IV.A: *"For a well-balanced application, performance
degradation of one node may make this node the bottleneck of the whole
system's performance on this application."*  We model every NPB job as
bulk-synchronous, so the job's progress rate is the **minimum** of its
nodes' rates.  Two consequences the paper builds policies on fall out
directly:

1. degrading one node of a job costs the same performance as degrading
   all of them (hence state-based policies target whole jobs — more watts
   saved for the same performance price);
2. upgrading only some nodes of a degraded job buys no speedup until the
   slowest node rises.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["node_progress_rate", "job_progress_rate", "slowdown_factor"]


def node_progress_rate(
    speed: float | np.ndarray, compute_boundness: float
) -> float | np.ndarray:
    """Progress rate of one node at relative ``speed``, for a phase of the
    given β.  Returns a value in ``(0, 1]``; 1 means full speed.

    Args:
        speed: ``f/f_max`` ∈ (0, 1]; scalar or array (vectorised).
        compute_boundness: β ∈ [0, 1].
    """
    beta = float(compute_boundness)
    if not 0.0 <= beta <= 1.0:
        raise WorkloadError("compute_boundness must lie in [0, 1]")
    s = np.asarray(speed, dtype=np.float64)
    if np.any(s <= 0.0) or np.any(s > 1.0):
        raise WorkloadError("speed must lie in (0, 1]")
    rate = 1.0 / ((1.0 - beta) + beta / s)
    if np.ndim(rate) == 0:
        return float(rate)
    return rate


def slowdown_factor(
    speed: float | np.ndarray, compute_boundness: float
) -> float | np.ndarray:
    """Runtime stretch ``1 / rate`` — ≥ 1, the factor a phase dilates by."""
    rate = node_progress_rate(speed, compute_boundness)
    if np.ndim(rate) == 0:
        return 1.0 / float(rate)
    return 1.0 / np.asarray(rate)


def job_progress_rate(speeds: np.ndarray, compute_boundness: float) -> float:
    """Progress rate of a bulk-synchronous job across its nodes.

    The job moves at the rate of its slowest node (see module docstring).

    Args:
        speeds: Relative speeds of every node of the job, shape (k,).
        compute_boundness: β of the phase the job is currently in.

    Raises:
        WorkloadError: on an empty node set.
    """
    s = np.asarray(speeds, dtype=np.float64)
    if s.size == 0:
        raise WorkloadError("job_progress_rate over an empty node set")
    return float(node_progress_rate(float(s.min()), compute_boundness))
