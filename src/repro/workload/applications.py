"""The NPB application profile library (EP, CG, LU, BT, SP — class D).

Each :class:`ApplicationProfile` is a synthetic stand-in for one NAS
Parallel Benchmark, carrying what the power-capping control path observes:
its phase cycle (power signature), memory footprint, strong-scaling law
and DVFS sensitivity.  The characterisations follow the well-documented
behaviour of the suite:

* **EP** (Embarrassingly Parallel) — pure independent compute, almost no
  communication or memory traffic; the most DVFS-sensitive (β≈0.95) and
  the most power-hungry per node.
* **CG** (Conjugate Gradient) — irregular sparse matrix-vector products;
  memory-latency-bound with frequent small messages; the *least* DVFS-
  sensitive (β≈0.4).
* **LU** (LU decomposition, SSOR) — pipelined wavefront with fine-grained
  point-to-point communication; moderately compute-bound.
* **BT** (Block Tridiagonal) — dense block solves with periodic face
  exchanges; compute-heavy with a large footprint.
* **SP** (Scalar Pentadiagonal) — like BT but with thinner compute per
  communication, a bit more bandwidth-bound.

Nominal class-D runtimes are order-of-magnitude figures for 2010-era
12-core Westmere nodes, chosen so a 128-node cluster fed by the §V.C
random stream completes hundreds of jobs in a simulated 12-hour window.
Absolute seconds do not matter for the reproduction (metrics are ratios);
the *relative* mix of long/short and sensitive/insensitive jobs does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workload.phases import Phase, PhaseSchedule

__all__ = ["ApplicationProfile", "NPB_APPLICATIONS", "get_application"]


@dataclass(frozen=True)
class ApplicationProfile:
    """Synthetic profile of one parallel application.

    Args:
        name: Benchmark name ("EP", "CG", …).
        schedule: Cyclic phase schedule (the power signature).
        mem_fraction: Steady-state working-set size as a fraction of node
            memory, [0, 1].
        mem_ramp_s: Seconds over which the footprint ramps from the idle
            floor to ``mem_fraction`` after job start (initialisation /
            allocation period — this ramp is what change-based policies
            key on at job starts).
        ref_nprocs: Process count of the reference runtime.
        ref_runtime_s: Nominal runtime at ``ref_nprocs`` with every node
            at the top DVFS level, seconds.
        scaling_exponent: Strong-scaling exponent α: runtime(n) =
            ref_runtime · (ref_nprocs / n)^α.  α=1 is perfect scaling.
        gflops_per_node: Sustained GFLOP/s per node at the top level
            (used only by the efficiency-metric library).
    """

    name: str
    schedule: PhaseSchedule
    mem_fraction: float
    mem_ramp_s: float
    ref_nprocs: int
    ref_runtime_s: float
    scaling_exponent: float
    gflops_per_node: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise WorkloadError(f"{self.name}: mem_fraction outside [0, 1]")
        if self.mem_ramp_s < 0:
            raise WorkloadError(f"{self.name}: mem_ramp_s must be non-negative")
        if self.ref_nprocs < 1:
            raise WorkloadError(f"{self.name}: ref_nprocs must be >= 1")
        if self.ref_runtime_s <= 0:
            raise WorkloadError(f"{self.name}: ref_runtime_s must be positive")
        if not 0.0 < self.scaling_exponent <= 1.2:
            raise WorkloadError(f"{self.name}: implausible scaling exponent")
        if self.gflops_per_node < 0:
            raise WorkloadError(f"{self.name}: gflops_per_node must be >= 0")

    def nominal_runtime(self, nprocs: int) -> float:
        """Runtime at full frequency for ``nprocs`` processes, seconds."""
        if nprocs < 1:
            raise WorkloadError("nprocs must be >= 1")
        return self.ref_runtime_s * (self.ref_nprocs / nprocs) ** self.scaling_exponent

    def mean_compute_boundness(self) -> float:
        """Work-weighted β of the whole application."""
        return self.schedule.mean_compute_boundness()


def _profile(
    name: str,
    phases: list[Phase],
    mem_fraction: float,
    ref_runtime_s: float,
    scaling_exponent: float,
    gflops_per_node: float,
    mem_ramp_s: float = 60.0,
) -> ApplicationProfile:
    return ApplicationProfile(
        name=name,
        schedule=PhaseSchedule(phases),
        mem_fraction=mem_fraction,
        mem_ramp_s=mem_ramp_s,
        ref_nprocs=64,
        ref_runtime_s=ref_runtime_s,
        scaling_exponent=scaling_exponent,
        gflops_per_node=gflops_per_node,
    )


#: The paper's five evaluation applications, keyed by name.
NPB_APPLICATIONS: dict[str, ApplicationProfile] = {
    "EP": _profile(
        "EP",
        [
            Phase("compute", 0.97, cpu_util=0.92, nic_frac=0.00, compute_boundness=0.97),
            Phase("reduce", 0.03, cpu_util=0.25, nic_frac=0.10, compute_boundness=0.30),
        ],
        mem_fraction=0.06,
        ref_runtime_s=900.0,
        scaling_exponent=1.00,
        gflops_per_node=95.0,
        mem_ramp_s=20.0,
    ),
    "CG": _profile(
        "CG",
        [
            Phase("spmv", 0.55, cpu_util=0.62, nic_frac=0.12, compute_boundness=0.38),
            Phase("dot", 0.15, cpu_util=0.45, nic_frac=0.30, compute_boundness=0.30),
            Phase("axpy", 0.30, cpu_util=0.68, nic_frac=0.05, compute_boundness=0.50),
        ],
        mem_fraction=0.38,
        ref_runtime_s=1300.0,
        scaling_exponent=0.82,
        gflops_per_node=28.0,
    ),
    "LU": _profile(
        "LU",
        [
            Phase("ssor", 0.60, cpu_util=0.82, nic_frac=0.08, compute_boundness=0.74),
            Phase("rhs", 0.25, cpu_util=0.74, nic_frac=0.04, compute_boundness=0.66),
            Phase("exchange", 0.15, cpu_util=0.34, nic_frac=0.35, compute_boundness=0.25),
        ],
        mem_fraction=0.45,
        ref_runtime_s=2300.0,
        scaling_exponent=0.90,
        gflops_per_node=60.0,
    ),
    "BT": _profile(
        "BT",
        [
            Phase("x_solve", 0.28, cpu_util=0.80, nic_frac=0.05, compute_boundness=0.70),
            Phase("y_solve", 0.28, cpu_util=0.80, nic_frac=0.05, compute_boundness=0.70),
            Phase("z_solve", 0.28, cpu_util=0.80, nic_frac=0.05, compute_boundness=0.70),
            Phase("face_exchange", 0.16, cpu_util=0.38, nic_frac=0.40, compute_boundness=0.28),
        ],
        mem_fraction=0.55,
        ref_runtime_s=2900.0,
        scaling_exponent=0.88,
        gflops_per_node=65.0,
    ),
    "SP": _profile(
        "SP",
        [
            Phase("solve", 0.70, cpu_util=0.78, nic_frac=0.08, compute_boundness=0.60),
            Phase("exchange", 0.30, cpu_util=0.42, nic_frac=0.45, compute_boundness=0.30),
        ],
        mem_fraction=0.50,
        ref_runtime_s=2600.0,
        scaling_exponent=0.85,
        gflops_per_node=45.0,
    ),
}


def get_application(name: str) -> ApplicationProfile:
    """Look up an application profile by (case-insensitive) name.

    Raises:
        WorkloadError: for names outside the library.
    """
    profile = NPB_APPLICATIONS.get(name.upper())
    if profile is None:
        known = ", ".join(sorted(NPB_APPLICATIONS))
        raise WorkloadError(f"unknown application {name!r}; known: {known}")
    return profile
