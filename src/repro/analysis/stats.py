"""Summary statistics and resampling confidence intervals.

Experiment results from a stochastic simulator deserve error bars; these
helpers provide the two tools the reports use: five-number summaries of a
series and bootstrap confidence intervals of a statistic over per-job or
per-run samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import MetricError
from repro.sim.random import RandomSource

__all__ = ["SeriesSummary", "summarize", "bootstrap_ci"]


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number summary plus mean/std of a scalar sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} p25={self.p25:.4g} med={self.median:.4g} "
            f"p75={self.p75:.4g} max={self.maximum:.4g}"
        )


def summarize(values: np.ndarray) -> SeriesSummary:
    """Five-number summary of ``values``.

    Raises:
        MetricError: on an empty sample.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise MetricError("cannot summarize an empty sample")
    q = np.percentile(v, [25, 50, 75])
    return SeriesSummary(
        count=int(v.size),
        mean=float(v.mean()),
        std=float(v.std(ddof=1)) if v.size > 1 else 0.0,
        minimum=float(v.min()),
        p25=float(q[0]),
        median=float(q[1]),
        p75=float(q[2]),
        maximum=float(v.max()),
    )


def bootstrap_ci(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float, float]:
    """Percentile-bootstrap confidence interval of ``statistic``.

    Args:
        values: The sample (e.g. per-job slowdowns).
        statistic: Function of a 1-D array → scalar.
        confidence: Interval mass, e.g. 0.95.
        resamples: Bootstrap resamples.
        rng: Generator (a fresh seeded one is created if omitted —
            pass one for reproducible reports).

    Returns:
        ``(point_estimate, lower, upper)``.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise MetricError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise MetricError("confidence must lie in (0, 1)")
    if resamples < 1:
        raise MetricError("resamples must be >= 1")
    gen = (
        rng
        if rng is not None
        else RandomSource(seed=0).stream("analysis.bootstrap")
    )
    point = float(statistic(v))
    idx = gen.integers(0, v.size, size=(resamples, v.size))
    stats = np.asarray([statistic(v[row]) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return point, float(lower), float(upper)
