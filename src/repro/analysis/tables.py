"""Plain-text tables for experiment reports.

:class:`Table` is a minimal column-aligned renderer (no third-party
dependency); the ``format_fig*_table`` helpers render the standard
paper-figure results through it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import MetricError

if TYPE_CHECKING:
    from repro.experiments.fig6_candidate_size import Fig6Result
    from repro.experiments.fig7_policies import Fig7Result

__all__ = ["Table", "format_fig6_table", "format_fig7_table"]


class Table:
    """A column-aligned text table.

    Args:
        headers: Column titles.
        align: Per-column alignment, "<" (left) or ">" (right); defaults
            to left for the first column and right for the rest, which
            suits label-plus-numbers layouts.
    """

    def __init__(self, headers: Sequence[str], align: Sequence[str] | None = None):
        if not headers:
            raise MetricError("a table needs at least one column")
        self._headers = [str(h) for h in headers]
        if align is None:
            align = ["<"] + [">"] * (len(headers) - 1)
        if len(align) != len(headers) or any(a not in "<>" for a in align):
            raise MetricError("align must be '<'/'>' per column")
        self._align = list(align)
        self._rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row (cells are stringified; count must match)."""
        if len(cells) != len(self._headers):
            raise MetricError(
                f"row has {len(cells)} cells, table has {len(self._headers)} columns"
            )
        self._rows.append([str(c) for c in cells])

    def render(self) -> str:
        """The table as a multi-line string with a header separator."""
        widths = [
            max(len(self._headers[i]), *(len(r[i]) for r in self._rows))
            if self._rows
            else len(self._headers[i])
            for i in range(len(self._headers))
        ]
        def fmt(row: list[str]) -> str:
            return "  ".join(
                f"{cell:{self._align[i]}{widths[i]}}" for i, cell in enumerate(row)
            ).rstrip()

        lines = [fmt(self._headers), "  ".join("-" * w for w in widths)]
        lines.extend(fmt(r) for r in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_fig6_table(result: Fig6Result) -> str:
    """Render a :class:`~repro.experiments.fig6_candidate_size.Fig6Result`
    as the paper's Figure 6: normalised P_max and ΔP×T per size/policy."""
    table = Table(
        ["|A_candidate|", "policy", "Pmax (norm)", "dPxT (norm)", "Performance"]
    )
    for point in sorted(result.points, key=lambda p: (p.policy, p.size)):
        table.add_row(
            point.size,
            point.policy,
            f"{point.p_max_ratio:.3f}",
            f"{point.overspend_ratio:.3f}",
            f"{point.performance:.4f}",
        )
    return table.render()


def format_fig7_table(result: Fig7Result) -> str:
    """Render a :class:`~repro.experiments.fig7_policies.Fig7Result` as
    the paper's Figure 7 summary rows."""
    table = Table(
        [
            "policy",
            "Performance",
            "loss",
            "CPLJ",
            "Pmax (norm)",
            "dPxT reduction",
            "red?",
        ]
    )
    base = result.baseline.metrics
    table.add_row(
        "uncapped",
        f"{base.performance:.4f}",
        "-",
        f"{base.cplj}/{base.finished_jobs}",
        "1.000",
        "-",
        "-",
    )
    for row in result.outcomes:
        table.add_row(
            row.policy,
            f"{row.performance:.4f}",
            f"{row.performance_loss:.1%}",
            f"{row.cplj}/{row.result.metrics.finished_jobs}",
            f"{row.p_max_ratio:.3f}",
            f"{row.overspend_reduction:.1%}",
            "yes" if row.entered_red else "no",
        )
    return table.render()
