"""ASCII charts for terminal/CI-friendly experiment reports."""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError

__all__ = ["ascii_chart", "ascii_histogram"]


def ascii_chart(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """A multi-series scatter/line chart rendered with text cells.

    Args:
        x: Shared x values (length n).
        series: Mapping label → y values (each length n); each series is
            drawn with its own marker character.
        width / height: Plot area size in character cells.
        title: Optional title line.
    """
    xv = np.asarray(x, dtype=np.float64)
    if xv.ndim != 1 or len(xv) == 0:
        raise MetricError("x must be a non-empty 1-D array")
    if not series:
        raise MetricError("need at least one series")
    markers = "*o+x#@%&"
    ys = {}
    for label, y in series.items():
        arr = np.asarray(y, dtype=np.float64)
        if arr.shape != xv.shape:
            raise MetricError(f"series {label!r} length mismatch")
        ys[label] = arr

    all_y = np.concatenate(list(ys.values()))
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xv.min()), float(xv.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (label, y) in enumerate(ys.items()):
        mark = markers[k % len(markers)]
        cols = np.round((xv - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int)
        rows = np.round((y - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:12.4g} +{'-' * width}+")
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:12.4g} +{'-' * width}+")
    lines.append(" " * 14 + f"{x_lo:<10.4g}{'':{max(0, width - 20)}}{x_hi:>10.4g}")
    legend = "   ".join(
        f"{markers[k % len(markers)]} {label}" for k, label in enumerate(ys)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def ascii_histogram(
    values: np.ndarray, bins: int = 20, width: int = 50, title: str = ""
) -> str:
    """A horizontal-bar histogram of ``values``."""
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1 or len(v) == 0:
        raise MetricError("values must be a non-empty 1-D array")
    if bins < 1:
        raise MetricError("bins must be >= 1")
    counts, edges = np.histogram(v, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{edges[i]:12.4g} .. {edges[i + 1]:12.4g} |{bar} {count}")
    return "\n".join(lines)
