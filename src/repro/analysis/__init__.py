"""Result post-processing: tables, ASCII charts and summary statistics.

Experiment harnesses return structured results; this package renders them
the way the paper presents its evaluation — normalised tables (Figure 6),
policy-comparison rows (Figure 7) and simple trend charts — entirely in
text, so reports work in CI logs and terminals without a plotting stack.
"""

from repro.analysis.export import export_result, jobs_csv, load_power_trace, metrics_json, power_trace_csv
from repro.analysis.figures import ascii_chart, ascii_histogram
from repro.analysis.report import render_run_report
from repro.analysis.stats import bootstrap_ci, summarize
from repro.analysis.tables import Table, format_fig6_table, format_fig7_table

__all__ = [
    "Table",
    "ascii_chart",
    "ascii_histogram",
    "bootstrap_ci",
    "export_result",
    "jobs_csv",
    "load_power_trace",
    "metrics_json",
    "power_trace_csv",
    "render_run_report",
    "format_fig6_table",
    "format_fig7_table",
    "summarize",
]
