"""Markdown experiment reports.

:func:`render_run_report` turns one or more
:class:`~repro.experiments.common.ExperimentResult` objects into a
self-contained Markdown document: configuration, per-run metric tables,
baseline-normalised comparisons, an ASCII power-trajectory chart and a
per-application performance breakdown.  The CLI's ``report`` command and
the examples write these files so experiment outputs are reviewable
artifacts rather than scrollback.
"""

from __future__ import annotations

import io
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.analysis.figures import ascii_chart
from repro.analysis.tables import Table
from repro.errors import MetricError
from repro.metrics.performance import per_application_performance
from repro.metrics.summary import compare_runs
from repro.units import fmt_duration, fmt_energy, fmt_power

if TYPE_CHECKING:
    from repro.experiments.common import ExperimentResult

__all__ = ["render_run_report"]


def _config_section(out: io.StringIO, result: ExperimentResult) -> None:
    config = result.config
    out.write("## Configuration\n\n")
    table = Table(["parameter", "value"])
    table.add_row("cluster", f"{config.num_nodes} Tianhe-1A nodes")
    table.add_row("seed", config.seed)
    table.add_row("control period", f"{config.control_period_s:g} s")
    table.add_row("runtime scale", f"{config.runtime_scale:g}")
    table.add_row("training window", fmt_duration(config.training_duration_s))
    table.add_row("evaluation window", fmt_duration(config.run_duration_s))
    table.add_row("T_g (steady green)", f"{config.steady_green_cycles} cycles")
    table.add_row(
        "margins (P_H/P_L)",
        f"{config.margin_high:.0%} / {config.margin_low:.0%} below peak",
    )
    table.add_row("provision fraction", f"{config.provision_fraction:.0%} of peak")
    table.add_row("scheduler", config.scheduler)
    candidates = (
        "all controllable"
        if config.candidate_size is None
        else str(config.candidate_size)
    )
    table.add_row("|A_candidate|", candidates)
    out.write("```\n" + table.render() + "\n```\n\n")
    out.write(
        f"Learned thresholds: P_L = {fmt_power(result.p_low_w)}, "
        f"P_H = {fmt_power(result.p_high_w)}; training peak "
        f"{fmt_power(result.training_peak_w)}; provision "
        f"{fmt_power(result.provision_w)}.\n\n"
    )


def _metrics_section(out: io.StringIO, results: Sequence) -> None:
    out.write("## Metrics\n\n")
    table = Table(
        ["run", "Performance", "CPLJ", "P_max", "avg power", "energy",
         "dPxT", "red?"]
    )
    for r in results:
        m = r.metrics
        table.add_row(
            r.label,
            f"{m.performance:.4f}",
            f"{m.cplj}/{m.finished_jobs}",
            fmt_power(m.p_max_w),
            fmt_power(m.avg_power_w),
            fmt_energy(m.energy_j),
            f"{m.overspend:.5f}",
            "yes" if r.entered_red else ("no" if r.state_cycles else "-"),
        )
    out.write("```\n" + table.render() + "\n```\n\n")


def _comparison_section(out: io.StringIO, results: Sequence) -> None:
    baseline = next((r for r in results if not r.state_cycles), None)
    capped = [r for r in results if r.state_cycles]
    if baseline is None or not capped:
        return
    out.write(f"## Normalised against `{baseline.label}`\n\n")
    table = Table(
        ["run", "P_max ratio", "energy ratio", "dPxT reduction", "perf loss"]
    )
    for r in capped:
        c = compare_runs(r.metrics, baseline.metrics)
        table.add_row(
            r.label,
            f"{c.p_max_ratio:.3f}",
            f"{c.energy_ratio:.3f}",
            f"{c.overspend_reduction:.1%}",
            f"{1 - c.performance:.1%}",
        )
    out.write("```\n" + table.render() + "\n```\n\n")


def _trajectory_section(out: io.StringIO, results: Sequence) -> None:
    out.write("## Power trajectory\n\n")
    reference = results[0]
    stride = max(1, len(reference.times) // 100)
    series = {}
    for r in results[:3]:  # at most three series keep the chart readable
        series[r.label] = r.power_w[::stride]
    x = reference.times[::stride]
    # Align lengths defensively (runs share the protocol, so they match).
    n = min(len(x), *(len(v) for v in series.values()))
    series = {k: v[:n] for k, v in series.items()}
    out.write(
        "```\n"
        + ascii_chart(x[:n], series, title="total power, watts", height=14, width=72)
        + "\n```\n\n"
    )


def _per_app_section(out: io.StringIO, results: Sequence) -> None:
    out.write("## Per-application Performance(cap)\n\n")
    apps: dict[str, dict[str, float]] = {}
    for r in results:
        try:
            breakdown = per_application_performance(r.finished_jobs)
        except MetricError:
            continue
        for app, value in breakdown.items():
            apps.setdefault(app, {})[r.label] = value
    if not apps:
        return
    labels = [r.label for r in results]
    table = Table(["application"] + labels)
    for app in sorted(apps):
        table.add_row(
            app, *(f"{apps[app].get(l, float('nan')):.4f}" for l in labels)
        )
    out.write("```\n" + table.render() + "\n```\n\n")
    out.write(
        "Compute-bound applications (EP) pay the largest capping cost; "
        "memory/communication-bound ones (CG) are nearly free to "
        "throttle — the DVFS-sensitivity story behind the paper's small "
        "overall loss.\n\n"
    )


def _thermal_section(out: io.StringIO, results: Sequence) -> None:
    rows = [r for r in results if r.peak_temperature_c is not None]
    if not rows:
        return
    out.write("## Thermal / reliability\n\n")
    table = Table(["run", "peak node temp (C)", "expected failures"])
    for r in rows:
        table.add_row(
            r.label,
            f"{r.peak_temperature_c:.1f}",
            f"{r.expected_failures:.3e}",
        )
    out.write("```\n" + table.render() + "\n```\n\n")


def render_run_report(results: Sequence, title: str = "Experiment report") -> str:
    """Render a Markdown report over one or more experiment results.

    Args:
        results: Results from :func:`repro.experiments.run_experiment`,
            all from the *same* configuration (the first result's config
            is reported).  Include the unmanaged baseline to get the
            normalised-comparison section.
        title: Document title.

    Raises:
        MetricError: on an empty result list.
    """
    if not results:
        raise MetricError("cannot report on zero results")
    out = io.StringIO()
    out.write(f"# {title}\n\n")
    out.write(
        "Generated by `repro`, the reproduction of *A Power Provision "
        "and Capping Architecture for Large Scale Systems* (IPPS 2012).\n\n"
    )
    _config_section(out, results[0])
    _metrics_section(out, results)
    _comparison_section(out, results)
    _trajectory_section(out, results)
    _per_app_section(out, results)
    _thermal_section(out, results)
    return out.getvalue()
