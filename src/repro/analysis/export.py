"""Export experiment artifacts to CSV/JSON files.

An :class:`~repro.experiments.common.ExperimentResult` carries three
artifacts a downstream analysis (pandas, R, a spreadsheet) wants:

* the **power trace** — `(time, power)` rows;
* the **job table** — one row per finished job with identity, timing
  and degradation exposure;
* the **metrics** — the scalar §V.C bundle plus run metadata.

:func:`export_result` writes all three next to each other with a common
stem, and :func:`load_power_trace` round-trips the trace for replay or
re-scoring against a different provision threshold.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import MetricError
from repro.workload.job import Job

if TYPE_CHECKING:
    from repro.experiments.common import ExperimentResult

__all__ = [
    "power_trace_csv",
    "jobs_csv",
    "metrics_json",
    "export_result",
    "load_power_trace",
]

_TRACE_HEADER = "time_s,power_w"
_JOBS_HEADER = (
    "job_id,app,nprocs,nodes,submit_time_s,start_time_s,finish_time_s,"
    "nominal_runtime_s,actual_runtime_s,degraded_exposure_s"
)


def power_trace_csv(times: np.ndarray, power_w: np.ndarray) -> str:
    """The power trace as CSV text."""
    t = np.asarray(times, dtype=np.float64)
    p = np.asarray(power_w, dtype=np.float64)
    if t.shape != p.shape or t.ndim != 1:
        raise MetricError("times/power must be equal-length 1-D arrays")
    lines = [_TRACE_HEADER]
    lines.extend(f"{float(ti)!r},{float(pi)!r}" for ti, pi in zip(t, p))
    return "\n".join(lines) + "\n"


def load_power_trace(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Read back a trace written by :func:`power_trace_csv`."""
    text = Path(path).read_text(encoding="utf-8")
    lines = [ln for ln in text.strip().splitlines() if ln.strip()]
    if not lines or lines[0] != _TRACE_HEADER:
        raise MetricError("power-trace CSV missing header")
    times, power = [], []
    for ln in lines[1:]:
        t_str, p_str = ln.split(",")
        times.append(float(t_str))
        power.append(float(p_str))
    return np.asarray(times), np.asarray(power)


def jobs_csv(jobs: Sequence[Job]) -> str:
    """The finished-job table as CSV text (one row per finished job)."""
    lines = [_JOBS_HEADER]
    for job in jobs:
        if job.finish_time is None:
            continue
        lines.append(
            ",".join(
                str(v)
                for v in (
                    job.job_id,
                    job.app.name,
                    job.nprocs,
                    len(job.nodes),
                    job.submit_time,
                    job.start_time,
                    job.finish_time,
                    job.nominal_runtime_s,
                    job.actual_runtime_s,
                    job.degraded_exposure_s,
                )
            )
        )
    return "\n".join(lines) + "\n"


def metrics_json(result: ExperimentResult) -> str:
    """Run metadata + the §V.C metric bundle as pretty JSON."""
    m = result.metrics
    payload = {
        "label": result.label,
        "seed": result.config.seed,
        "num_nodes": result.config.num_nodes,
        "runtime_scale": result.config.runtime_scale,
        "training_peak_w": result.training_peak_w,
        "provision_w": result.provision_w,
        "p_low_w": result.p_low_w,
        "p_high_w": result.p_high_w,
        "performance": m.performance,
        "cplj": m.cplj,
        "finished_jobs": m.finished_jobs,
        "p_max_w": m.p_max_w,
        "avg_power_w": m.avg_power_w,
        "energy_j": m.energy_j,
        "overspend": m.overspend,
        "state_cycles": result.state_cycles,
        "entered_red": result.entered_red,
        "commands_sent": result.commands_sent,
        "peak_temperature_c": result.peak_temperature_c,
        "expected_failures": result.expected_failures,
    }
    return json.dumps(payload, indent=2) + "\n"


def export_result(
    result: ExperimentResult, directory: str | Path, stem: str | None = None
) -> list[Path]:
    """Write trace CSV, jobs CSV and metrics JSON for one result.

    Args:
        result: An :class:`~repro.experiments.common.ExperimentResult`.
        directory: Target directory (created if missing).
        stem: Filename stem; defaults to the run label.

    Returns:
        The three written paths,
        ``[<stem>.trace.csv, <stem>.jobs.csv, <stem>.metrics.json]``.
    """
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    base = stem or result.label
    paths = [
        out_dir / f"{base}.trace.csv",
        out_dir / f"{base}.jobs.csv",
        out_dir / f"{base}.metrics.json",
    ]
    paths[0].write_text(power_trace_csv(result.times, result.power_w), encoding="utf-8")
    paths[1].write_text(jobs_csv(result.finished_jobs), encoding="utf-8")
    paths[2].write_text(metrics_json(result), encoding="utf-8")
    return paths
