"""Unit helpers: readable constructors and formatters for SI quantities.

The library stores raw floats (see :mod:`repro.types`); these helpers make
configuration code self-documenting (``ghz(2.93)`` instead of ``2.93e9``)
and keep report formatting consistent across tables, figures and logs.
"""

from __future__ import annotations

__all__ = [
    "MICRO",
    "KILO",
    "MEGA",
    "GIGA",
    "ghz",
    "mhz",
    "gib",
    "mib",
    "kw",
    "mw",
    "gb_per_s",
    "minutes",
    "hours",
    "fmt_power",
    "fmt_energy",
    "fmt_freq",
    "fmt_bytes",
    "fmt_duration",
    "fmt_percent",
]

MICRO = 1e-6
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

_BINARY_KILO = 1024


def ghz(value: float) -> float:
    """Frequency in gigahertz → hertz."""
    return value * GIGA


def mhz(value: float) -> float:
    """Frequency in megahertz → hertz."""
    return value * MEGA


def gib(value: float) -> int:
    """Memory size in gibibytes → bytes (rounded to an integer byte count)."""
    return int(value * _BINARY_KILO**3)


def mib(value: float) -> int:
    """Memory size in mebibytes → bytes (rounded to an integer byte count)."""
    return int(value * _BINARY_KILO**2)


def kw(value: float) -> float:
    """Power in kilowatts → watts."""
    return value * KILO


def mw(value: float) -> float:
    """Power in megawatts → watts."""
    return value * MEGA


def gb_per_s(value: float) -> float:
    """Link bandwidth in decimal gigabytes per second → bytes per second."""
    return value * GIGA


def minutes(value: float) -> float:
    """Duration in minutes → seconds."""
    return value * 60.0


def hours(value: float) -> float:
    """Duration in hours → seconds."""
    return value * 3600.0


def fmt_power(watts: float) -> str:
    """Render a power value with an adaptive unit (W / kW / MW)."""
    if abs(watts) >= MEGA:
        return f"{watts / MEGA:.3f} MW"
    if abs(watts) >= KILO:
        return f"{watts / KILO:.2f} kW"
    return f"{watts:.1f} W"


def fmt_energy(joules: float) -> str:
    """Render an energy value with an adaptive unit (J / kJ / MJ / kWh)."""
    if abs(joules) >= 3.6 * MEGA:  # >= 1 kWh reads better in kWh
        return f"{joules / (3.6 * MEGA):.2f} kWh"
    if abs(joules) >= MEGA:
        return f"{joules / MEGA:.2f} MJ"
    if abs(joules) >= KILO:
        return f"{joules / KILO:.2f} kJ"
    return f"{joules:.1f} J"


def fmt_freq(hertz: float) -> str:
    """Render a frequency with an adaptive unit (Hz / MHz / GHz)."""
    if abs(hertz) >= GIGA:
        return f"{hertz / GIGA:.2f} GHz"
    if abs(hertz) >= MEGA:
        return f"{hertz / MEGA:.0f} MHz"
    return f"{hertz:.0f} Hz"


def fmt_bytes(num_bytes: float) -> str:
    """Render a byte count with an adaptive binary unit (B / KiB / … / TiB)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < _BINARY_KILO:
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= _BINARY_KILO
    return f"{value:.2f} TiB"


def fmt_duration(seconds: float) -> str:
    """Render a duration as ``H:MM:SS`` (or ``M:SS`` below an hour)."""
    total = int(round(seconds))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    if h:
        return f"{h}:{m:02d}:{s:02d}"
    return f"{m}:{s:02d}"


def fmt_percent(fraction: float, digits: int = 1) -> str:
    """Render a fraction in ``[0, 1]``-ish range as a percentage string."""
    return f"{fraction * 100.0:.{digits}f}%"
