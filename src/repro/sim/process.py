"""Periodic tasks and one-shot timers layered on the simulation engine.

The power-management architecture in the paper is built from periodic
activities: telemetry agents sample node state every τ seconds, the global
manager runs a control cycle every cycle period, and threshold adjustment
happens every ``t_p`` control cycles.  :class:`PeriodicTask` captures that
pattern once so every subsystem gets identical semantics:

* the first firing happens at ``start_delay`` after :meth:`PeriodicTask.start`;
* subsequent firings are spaced exactly ``period`` apart in simulated time
  (fixed-rate, no drift accumulation — each next event is scheduled from
  the *nominal* previous time, not from when the callback actually ran,
  which for a discrete-event simulator are the same thing);
* :meth:`PeriodicTask.stop` cancels the pending firing and prevents
  rescheduling.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event

__all__ = ["PeriodicTask", "OneShotTimer"]


class PeriodicTask:
    """Fire ``callback(fire_count)`` every ``period`` simulated seconds.

    Args:
        engine: The engine that drives the task.
        period: Spacing between firings, seconds; must be positive.
        callback: Called with the 0-based firing index.
        label: Tag used for the underlying events (traces, debugging).
        start_delay: Delay before the first firing once started; defaults
            to one full period (i.e. the first sample happens at t=τ, not
            t=0, matching how a sampling interval is usually defined).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        period: float,
        callback: Callable[[int], Any],
        label: str = "periodic",
        start_delay: float | None = None,
    ) -> None:
        if period <= 0.0:
            raise SimulationError(f"period must be positive, got {period}")
        self._engine = engine
        self._period = float(period)
        self._callback = callback
        self._label = label
        self._start_delay = period if start_delay is None else float(start_delay)
        if self._start_delay < 0.0:
            raise SimulationError("start_delay must be non-negative")
        self._pending: Event | None = None
        self._fire_count = 0
        self._active = False

    @property
    def period(self) -> float:
        """Firing period, seconds."""
        return self._period

    @property
    def fire_count(self) -> int:
        """Number of completed firings."""
        return self._fire_count

    @property
    def active(self) -> bool:
        """Whether the task is currently scheduled to keep firing."""
        return self._active

    def start(self) -> None:
        """Begin firing.  Idempotent: starting an active task is a no-op."""
        if self._active:
            return
        self._active = True
        self._pending = self._engine.schedule(
            self._start_delay, self._fire, label=self._label
        )

    def stop(self) -> None:
        """Stop firing.  Idempotent.  A stopped task can be started again."""
        self._active = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _fire(self) -> None:
        if not self._active:  # stopped between scheduling and firing
            return
        index = self._fire_count
        self._fire_count += 1
        # Schedule the next firing *before* running the callback so the
        # callback can stop() the task and reliably suppress it.
        self._pending = self._engine.schedule(
            self._period, self._fire, label=self._label
        )
        self._callback(index)


class OneShotTimer:
    """Fire ``callback()`` once, ``delay`` seconds after :meth:`start`.

    A tiny convenience wrapper that also tracks whether it fired, which the
    capping algorithm's steady-green bookkeeping uses in tests.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        delay: float,
        callback: Callable[[], Any],
        label: str = "timer",
    ) -> None:
        if delay < 0.0:
            raise SimulationError("delay must be non-negative")
        self._engine = engine
        self._delay = float(delay)
        self._callback = callback
        self._label = label
        self._pending: Event | None = None
        self._fired = False

    @property
    def fired(self) -> bool:
        """Whether the callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """Whether the timer is armed but has not fired."""
        return self._pending is not None and not self._pending.cancelled

    def start(self) -> None:
        """Arm the timer.  Restarting an armed timer resets its deadline."""
        self.cancel()
        self._fired = False
        self._pending = self._engine.schedule(self._delay, self._fire, self._label)

    def cancel(self) -> None:
        """Disarm without firing (no-op if not armed)."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _fire(self) -> None:
        self._pending = None
        self._fired = True
        self._callback()
