"""The simulation engine: clock, scheduling API and run loop.

The engine owns one :class:`~repro.sim.events.EventQueue` and a monotone
clock.  Everything else in the library — job arrivals, phase transitions,
telemetry sampling, the power-management control cycle — is expressed as
events against a single engine instance, which is what makes whole runs
deterministic and replayable.

Typical use::

    engine = SimulationEngine()
    engine.schedule(5.0, lambda: print("five seconds in"))
    engine.run(until=3600.0)

The run loop advances the clock to each event's timestamp before invoking
its callback; callbacks may schedule further events (including at the
current instant, which fire in FIFO order after the current callback
returns).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Deterministic single-threaded discrete-event engine.

    Attributes:
        now: Current simulated time, seconds.  Starts at ``start_time``
            (default 0) and only moves forward.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if start_time < 0.0:
            raise SimulationError("start_time must be non-negative")
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks invoked since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after currently
        pending same-time events (FIFO).
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, label)

    def schedule_at(
        self, time: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return self._queue.push(time, callback, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> Event:
        """Process exactly one event: advance the clock, run the callback.

        Returns the event that fired.

        Raises:
            SimulationError: if no live events are pending.
        """
        event = self._queue.pop()
        self._now = event.time
        self._events_processed += 1
        event.callback()
        return event

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run the event loop.

        Args:
            until: Stop once the clock would pass this time.  Events at
                exactly ``until`` still fire; the clock is then advanced to
                ``until`` even if the last event fired earlier, so that a
                bounded run always ends with ``now == until``.
            max_events: Optional safety bound on the number of callbacks.

        Returns:
            The number of events processed by this call.

        Raises:
            SimulationError: on re-entrant invocation (a callback calling
                ``run``) or when neither bound is given and the queue
                drains to empty (which is the normal exit) — draining is
                *not* an error; only re-entry is.
        """
        if self._running:
            raise SimulationError("re-entrant SimulationEngine.run() call")
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is before current time {self._now}"
            )
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return processed

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Run until the event queue is empty (or ``max_events`` reached)."""
        return self.run(until=None, max_events=max_events)

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock.

        Intended for reusing one engine across repeated benchmark
        iterations; ordinary code should build a fresh engine per run.
        """
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self._queue.clear()
        self._now = float(start_time)
        self._events_processed = 0
