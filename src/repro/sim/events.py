"""Event record and priority queue for the simulation kernel.

The queue is a binary heap ordered by ``(time, sequence)``.  The sequence
number is assigned at insertion, which gives two guarantees the rest of the
library relies on:

1. **Deterministic tie-breaking** — events scheduled for the same instant
   fire in insertion (FIFO) order, independent of callback identity or hash
   randomisation.
2. **Stable cancellation** — cancelling an event marks it dead in place
   (O(1)); dead entries are skipped lazily on pop, the standard heapq
   cancellation idiom.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback.

    Instances are created by :meth:`EventQueue.push` (or the engine's
    ``schedule``/``schedule_at`` wrappers), never directly by user code.

    Attributes:
        time: Simulated time at which the callback fires, seconds.
        seq: Insertion sequence number; orders simultaneous events.
        callback: Zero-argument callable invoked by the engine.
        label: Optional human-readable tag used in traces and error messages.
    """

    __slots__ = ("time", "seq", "callback", "label", "_cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._queue: "EventQueue | None" = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event dead; the queue will skip it on pop.

        Cancelling an already-cancelled or already-fired event is a no-op,
        so holders of an event handle never need to track whether it ran.
        """
        if self._queue is not None:
            self._queue.cancel(self)
        else:
            self._cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        tag = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.6g}{tag} #{self.seq} {state}>"


class EventQueue:
    """Min-heap of :class:`Event` keyed by ``(time, seq)``.

    The queue never reorders equal-time events and never compacts eagerly:
    cancelled events stay in the heap until they surface, keeping both
    ``push`` and ``cancel`` O(log n) / O(1).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Returns the event handle, which the caller may :meth:`Event.cancel`.
        """
        if not (time == time):  # NaN guard; NaN breaks heap invariants
            raise SimulationError("event time must not be NaN")
        event = Event(time, next(self._counter), callback, label)
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event._cancelled:
                self._live -= 1
                event._queue = None  # fired: later cancel() is a no-op flag
                return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> float:
        """Time of the earliest live event without removing it.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        while self._heap and self._heap[0]._cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise SimulationError("peek into an empty event queue")
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it is still pending (idempotent)."""
        if not event._cancelled and event._queue is self:
            event._cancelled = True
            event._queue = None
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

    def iter_pending(self) -> Iterator[Event]:
        """Iterate live events in an unspecified order (inspection only)."""
        return (e for e in self._heap if not e._cancelled)
