"""Discrete-event simulation kernel.

A deliberately small, deterministic event-driven core used by every other
subsystem:

* :mod:`repro.sim.events` — the event record and the priority queue;
* :mod:`repro.sim.engine` — the simulation clock and run loop;
* :mod:`repro.sim.process` — periodic tasks and one-shot timers built on
  top of the engine (the power-management control cycle is a periodic
  task, as are telemetry sampling and job-phase advancement);
* :mod:`repro.sim.random` — reproducible random-stream management.

Determinism contract: two engines driven by the same callbacks, the same
seeds and the same schedule produce bit-identical traces.  Ties in event
time are broken by insertion order (FIFO), never by callback identity.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventQueue
from repro.sim.process import OneShotTimer, PeriodicTask
from repro.sim.random import RandomSource

__all__ = [
    "Event",
    "EventQueue",
    "SimulationEngine",
    "PeriodicTask",
    "OneShotTimer",
    "RandomSource",
]
