"""Reproducible random-stream management.

Every stochastic component in the simulator (job generator, phase jitter,
power-meter noise, …) draws from its own named substream derived from one
root seed.  Substreams are independent by construction (``numpy`` seed
sequences spawned with a stable, name-derived key), which gives the two
properties experiment code needs:

1. **Reproducibility** — the same root seed reproduces the whole run.
2. **Insensitivity to composition** — adding a new consumer of randomness
   (say, a second noise source) does not perturb the draws seen by
   existing consumers, because streams are keyed by name rather than by
   creation order.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomSource"]


def _name_key(name: str) -> int:
    """Stable 64-bit key for a stream name (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomSource:
    """A root seed plus a registry of named, independent substreams.

    Example::

        rng = RandomSource(seed=42)
        gen = rng.stream("workload.generator")
        noise = rng.stream("power.meter.noise")

    Repeated calls with the same name return the *same* generator object,
    so a component may cheaply re-fetch its stream instead of storing it.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this source was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the substream for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(_name_key(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RandomSource":
        """Derive an independent child :class:`RandomSource`.

        Used when a whole subsystem (e.g. one experiment repetition) needs
        its own namespace of streams.
        """
        child_seed = _name_key(f"{self._seed}:{name}") % (2**63)
        return RandomSource(seed=child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self._seed}, streams={len(self._streams)})"
