"""The power-delivery topology: feeds → UPS → per-rack branches.

The paper provisions one scalar capability ``P_Max`` (§II.D); real
delivery is a *hierarchy* of rated stages, each of which can fail
independently:

.. code-block:: text

    utility feed A ─┐
                    ├─► UPS ─► PDU/breaker rack 0 ─► nodes 0..k-1
    utility feed B ─┘         PDU/breaker rack 1 ─► nodes k..2k-1
                              ...

:class:`PowerTopology` is the frozen description of that hierarchy:
redundant utility feeds with individual capacities, an optional UPS
ceiling, and per-rack branch circuits (PDU + breaker) with a shared
rating, nodes mapped to racks in contiguous blocks.  Like
:class:`~repro.power.supply.PowerProvision` it is pure configuration —
the mutable live state (which feeds are up, which breakers have tripped)
lives in :class:`~repro.provision.runtime.ProvisionRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError
from repro.types import Watts

__all__ = ["PowerTopology"]


@dataclass(frozen=True)
class PowerTopology:
    """Rated capacities of every stage of the delivery path.

    Args:
        feed_capacities_w: Deliverable watts of each utility feed; the
            healthy global capacity is their sum (capped by the UPS).
        branch_rated_w: Continuous rating of each rack's branch circuit
            (its PDU and breaker share this rating), watts.
        nodes_per_rack: Nodes per branch circuit; nodes are mapped to
            racks in contiguous id blocks, the last rack may be short.
        num_nodes: Total node count (fixes the rack count).
        ups_capacity_w: Optional UPS throughput ceiling, watts; ``None``
            means the UPS is not the bottleneck.
    """

    feed_capacities_w: tuple[float, ...]
    branch_rated_w: float
    nodes_per_rack: int
    num_nodes: int
    ups_capacity_w: float | None = None

    def __post_init__(self) -> None:
        if not self.feed_capacities_w:
            raise ConfigurationError("topology needs at least one utility feed")
        if any(c <= 0 for c in self.feed_capacities_w):
            raise ConfigurationError("feed capacities must be positive")
        if self.branch_rated_w <= 0:
            raise ConfigurationError("branch rating must be positive")
        if self.nodes_per_rack < 1:
            raise ConfigurationError("nodes_per_rack must be >= 1")
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.ups_capacity_w is not None and self.ups_capacity_w <= 0:
            raise ConfigurationError("UPS capacity must be positive")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_feeds(self) -> int:
        """Number of utility feeds."""
        return len(self.feed_capacities_w)

    @property
    def num_racks(self) -> int:
        """Number of rack branch circuits."""
        return -(-self.num_nodes // self.nodes_per_rack)

    def rack_index(self) -> np.ndarray:
        """Node id → rack id, shape (num_nodes,)."""
        return np.arange(self.num_nodes, dtype=np.int64) // self.nodes_per_rack

    def rack_nodes(self, rack: int) -> np.ndarray:
        """Node ids on one rack's branch, ascending."""
        if not 0 <= rack < self.num_racks:
            raise ConfigurationError(
                f"rack {rack} outside [0, {self.num_racks - 1}]"
            )
        lo = rack * self.nodes_per_rack
        hi = min(lo + self.nodes_per_rack, self.num_nodes)
        return np.arange(lo, hi, dtype=np.int64)

    # ------------------------------------------------------------------
    # Capacities
    # ------------------------------------------------------------------
    @property
    def total_feed_capacity_w(self) -> float:
        """Sum of every feed's capacity, watts."""
        return float(sum(self.feed_capacities_w))

    @property
    def design_capacity_w(self) -> float:
        """Healthy global capacity: all feeds up, through the UPS."""
        total = self.total_feed_capacity_w
        if self.ups_capacity_w is not None:
            return min(total, float(self.ups_capacity_w))
        return total

    def surviving_capacity_w(self, feed_live: np.ndarray) -> float:
        """Global capacity given the live-feed mask, watts."""
        live = np.asarray(feed_live, dtype=bool)
        if live.shape != (self.num_feeds,):
            raise ConfigurationError("feed_live mask shape mismatch")
        caps = np.asarray(self.feed_capacities_w, dtype=np.float64)
        total = float(caps[live].sum())
        if self.ups_capacity_w is not None:
            return min(total, float(self.ups_capacity_w))
        return total

    def branch_ratings_w(self) -> np.ndarray:
        """Per-rack branch rating, shape (num_racks,), watts."""
        return np.full(self.num_racks, float(self.branch_rated_w))

    # ------------------------------------------------------------------
    # Construction and validation against a cluster
    # ------------------------------------------------------------------
    @classmethod
    def for_cluster(
        cls,
        cluster: Cluster,
        nodes_per_rack: int = 8,
        feeds: int = 2,
        feed_headroom: float = 0.2,
        rack_headroom: float = 0.25,
        ups_capacity_w: Watts | None = None,
    ) -> "PowerTopology":
        """Size a topology for a cluster from headroom fractions.

        The feeds jointly deliver ``(1 + feed_headroom) · P_thy`` split
        evenly (so losing one of two feeds leaves 60% of ``P_thy`` at
        the default headroom), and each branch is rated at
        ``(1 + rack_headroom)`` times its rack's flat-out maximum.  A
        *negative* ``rack_headroom`` deliberately under-provisions the
        branches (the ``breaker-stress`` scenario).

        Args:
            cluster: The machine the topology feeds.
            nodes_per_rack: Branch-circuit granularity.
            feeds: Number of redundant utility feeds.
            feed_headroom: Fractional feed margin over ``P_thy``.
            rack_headroom: Fractional branch margin over the rack's
                theoretical maximum draw (may be negative, > −1).
            ups_capacity_w: Optional UPS ceiling, watts.
        """
        if feeds < 1:
            raise ConfigurationError("need at least one feed")
        if feed_headroom <= -1.0 or rack_headroom <= -1.0:
            raise ConfigurationError("headroom fractions must exceed -1")
        state = cluster.state
        node_max = np.asarray([s.max_power() for s in state.specs])[
            state.spec_index
        ]
        num_nodes = state.num_nodes
        rack_of = np.arange(num_nodes, dtype=np.int64) // int(nodes_per_rack)
        rack_max = np.bincount(rack_of, weights=node_max)
        per_feed = (
            (1.0 + feed_headroom) * float(node_max.sum()) / float(feeds)
        )
        return cls(
            feed_capacities_w=tuple([per_feed] * feeds),
            branch_rated_w=(1.0 + rack_headroom) * float(rack_max.max()),
            nodes_per_rack=int(nodes_per_rack),
            num_nodes=num_nodes,
            ups_capacity_w=ups_capacity_w,
        )

    def branch_floor_w(self, cluster: Cluster) -> np.ndarray:
        """Worst-case per-rack power with every controllable node at its
        idle floor and privileged nodes saturated — what a branch-level
        red response can guarantee, watts, shape (num_racks,)."""
        state = cluster.state
        if state.num_nodes != self.num_nodes:
            raise ConfigurationError("topology does not match the cluster size")
        mins = np.asarray([s.min_power() for s in state.specs])[state.spec_index]
        maxs = np.asarray([s.max_power() for s in state.specs])[state.spec_index]
        floor = np.where(state.controllable, mins, maxs)
        return np.bincount(
            self.rack_index(), weights=floor, minlength=self.num_racks
        )

    def check_assumptions(self, cluster: Cluster) -> None:
        """Raise :class:`ConfigurationError` if any branch is beyond help.

        Branch controllability: each rack's throttled floor must stay
        below its branch rating, otherwise no capping response could
        ever keep that breaker closed and the defense's no-trip
        guarantee is void from the start.
        """
        floors = self.branch_floor_w(cluster)
        worst = int(np.argmax(floors))
        if float(floors[worst]) >= self.branch_rated_w:
            raise ConfigurationError(
                f"branch controllability violated: rack {worst} draws "
                f"{float(floors[worst]):.0f} W even fully throttled, at or "
                f"above its branch rating {self.branch_rated_w:.0f} W"
            )
