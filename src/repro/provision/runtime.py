"""Live state of the power-delivery path during a run.

:class:`ProvisionRuntime` owns everything about delivery that *changes*
while an experiment runs: which utility feeds are live, which rack PDUs
are derated, the breaker trip integrals, and any standing operator cap
order.  The manager drives it once per control cycle:

1. :meth:`begin_cycle` — fire this cycle's scheduled and stochastic
   capacity events (the stochastic ones draw from the dedicated
   ``faults.provision`` substream, so attaching a provision runtime
   never perturbs workload or monitoring-fault streams);
2. the manager renegotiates its budget against :attr:`capacity_w` and
   runs the normal (or emergency) control cycle;
3. :meth:`settle` — integrate the cycle's *true* branch power into the
   breaker thermal model and account capacity-loss and
   branch-violation exposure.

Everything here is deterministic from the root seed; with a healthy
scenario no event ever fires and no stream is ever consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.facade import Observability, resolve_obs
from repro.power.thermal import BreakerThermalModel
from repro.provision.scenario import ProvisionScenario
from repro.provision.topology import PowerTopology
from repro.sim.random import RandomSource
from repro.types import Seconds, Watts

__all__ = ["ProvisionRuntime", "ProvisionCycleEvents", "ProvisionStats"]

#: Name of the dedicated random substream for power-side faults.
STREAM_NAME = "faults.provision"


@dataclass(frozen=True)
class ProvisionCycleEvents:
    """Capacity events that fired in one control cycle."""

    feed_losses: int = 0
    feed_restores: int = 0
    pdu_failures: int = 0
    cap_order_started: bool = False
    cap_order_ended: bool = False

    @property
    def any(self) -> bool:
        """Whether anything happened this cycle."""
        return (
            self.feed_losses > 0
            or self.feed_restores > 0
            or self.pdu_failures > 0
            or self.cap_order_started
            or self.cap_order_ended
        )


@dataclass(frozen=True)
class ProvisionStats:
    """Aggregate power-delivery accounting for one run."""

    feed_losses: int
    feed_restores: int
    pdu_failures: int
    cap_orders: int
    breaker_trips: int
    capacity_lost_w_seconds: float
    branch_cap_violation_seconds: float
    min_capacity_w: float
    design_capacity_w: float
    emergency_red_cycles: int = 0
    envelope_renegotiations: int = 0
    branch_cap_interventions: int = 0
    jobs_suspended: int = 0
    jobs_resumed: int = 0
    jobs_killed: int = 0
    nodes_shed: int = 0
    nodes_readmitted: int = 0

    def as_dict(self) -> dict[str, float | int]:
        """Flat mapping for JSON payloads (chaos CI reads this)."""
        return {
            "feed_losses": self.feed_losses,
            "feed_restores": self.feed_restores,
            "pdu_failures": self.pdu_failures,
            "cap_orders": self.cap_orders,
            "breaker_trips": self.breaker_trips,
            "capacity_lost_w_seconds": self.capacity_lost_w_seconds,
            "branch_cap_violation_seconds": self.branch_cap_violation_seconds,
            "min_capacity_w": self.min_capacity_w,
            "design_capacity_w": self.design_capacity_w,
            "emergency_red_cycles": self.emergency_red_cycles,
            "envelope_renegotiations": self.envelope_renegotiations,
            "branch_cap_interventions": self.branch_cap_interventions,
            "jobs_suspended": self.jobs_suspended,
            "jobs_resumed": self.jobs_resumed,
            "jobs_killed": self.jobs_killed,
            "nodes_shed": self.nodes_shed,
            "nodes_readmitted": self.nodes_readmitted,
        }


class ProvisionRuntime:
    """Mutable delivery-path state plus its seeded fault processes.

    Args:
        topology: The rated delivery hierarchy.
        scenario: Which capacity events fire, and when.
        rng: Experiment stream registry; stochastic events draw from its
            ``faults.provision`` substream.  Required only when the
            scenario has stochastic rates.
        obs: Observability facade; capacity events trip the flight
            recorder (``feed_loss``, ``pdu_failure``, ``cap_order``,
            ``breaker_trip``).
    """

    def __init__(
        self,
        topology: PowerTopology,
        scenario: ProvisionScenario,
        rng: RandomSource | None = None,
        obs: Observability | None = None,
    ) -> None:
        if scenario.stochastic and rng is None:
            raise ConfigurationError(
                "scenario has stochastic provision events but no "
                "RandomSource was provided"
            )
        if (
            scenario.pdu_failure_at_cycle is not None
            and scenario.pdu_failure_rack >= topology.num_racks
        ):
            raise ConfigurationError(
                f"pdu_failure_rack {scenario.pdu_failure_rack} outside the "
                f"topology's {topology.num_racks} racks"
            )
        self.topology = topology
        self.scenario = scenario
        self._gen = None if rng is None else rng.stream(STREAM_NAME)
        self._obs = resolve_obs(obs)
        self._rack_of = topology.rack_index()
        self._base_ratings = topology.branch_ratings_w()
        self._feed_live = np.ones(topology.num_feeds, dtype=bool)
        self._feed_stochastic = np.zeros(topology.num_feeds, dtype=bool)
        self._derate = np.ones(topology.num_racks, dtype=np.float64)
        self._breakers = BreakerThermalModel(
            self._base_ratings,
            trip_time_s=scenario.breaker_trip_time_s,
            cool_time_s=scenario.breaker_cool_time_s,
            cooldown_fraction=scenario.breaker_cooldown_fraction,
        )
        self._operator_cap_w: float | None = None
        self._cap_order_end_cycle: int | None = None
        self._cycle = -1
        self._last_now: float | None = None
        self._last_events = ProvisionCycleEvents()
        self._last_branch_over_w = 0.0
        # Counters / exposure accumulators.
        self._feed_losses = 0
        self._feed_restores = 0
        self._pdu_failures = 0
        self._cap_orders = 0
        self._capacity_lost_w_s = 0.0
        self._branch_violation_s = 0.0
        self._min_capacity_w = topology.design_capacity_w

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def obs(self) -> Observability:
        """The observability facade capacity events report through."""
        return self._obs

    @property
    def capacity_w(self) -> float:
        """Surviving global capacity this cycle, watts."""
        cap = self.topology.surviving_capacity_w(self._feed_live)
        if self._operator_cap_w is not None:
            cap = min(cap, self._operator_cap_w)
        return cap

    @property
    def design_capacity_w(self) -> float:
        """Healthy (all feeds, no orders) global capacity, watts."""
        return self.topology.design_capacity_w

    @property
    def branch_limits_w(self) -> np.ndarray:
        """Per-rack deliverable branch power (rating × PDU derate)."""
        return self._base_ratings * self._derate

    @property
    def feed_live(self) -> np.ndarray:
        """Live-feed mask (copy)."""
        return self._feed_live.copy()

    @property
    def breakers(self) -> BreakerThermalModel:
        """The branch breaker model."""
        return self._breakers

    @property
    def breaker_trips(self) -> int:
        """Cumulative breaker trip events."""
        return self._breakers.trip_count

    @property
    def tripped_racks(self) -> np.ndarray:
        """Rack ids with latched-open breakers, ascending."""
        return np.flatnonzero(self._breakers.tripped).astype(np.int64)

    @property
    def dark_nodes(self) -> np.ndarray:
        """Node ids on blacked-out (tripped) racks, ascending."""
        return np.flatnonzero(self._breakers.tripped[self._rack_of]).astype(
            np.int64
        )

    @property
    def last_branch_over_w(self) -> float:
        """Worst branch overload of the last settled cycle, watts."""
        return self._last_branch_over_w

    @property
    def capacity_lost_w_seconds(self) -> float:
        """Integrated (design − surviving) capacity exposure, W·s."""
        return self._capacity_lost_w_s

    @property
    def branch_cap_violation_seconds(self) -> float:
        """Seconds any branch drew above its deliverable limit."""
        return self._branch_violation_s

    @property
    def min_capacity_w(self) -> float:
        """Lowest surviving capacity seen, watts."""
        return self._min_capacity_w

    def rack_power_w(self, node_power_w: np.ndarray) -> np.ndarray:
        """Fold per-node power into per-rack branch power, watts."""
        p = np.asarray(node_power_w, dtype=np.float64)
        if p.shape != (self.topology.num_nodes,):
            raise ConfigurationError("node power array shape mismatch")
        return np.bincount(
            self._rack_of, weights=p, minlength=self.topology.num_racks
        )

    def stats(self) -> ProvisionStats:
        """Delivery-side accounting (emergency counters are folded in by
        the manager, which owns the response object)."""
        return ProvisionStats(
            feed_losses=self._feed_losses,
            feed_restores=self._feed_restores,
            pdu_failures=self._pdu_failures,
            cap_orders=self._cap_orders,
            breaker_trips=self._breakers.trip_count,
            capacity_lost_w_seconds=self._capacity_lost_w_s,
            branch_cap_violation_seconds=self._branch_violation_s,
            min_capacity_w=self._min_capacity_w,
            design_capacity_w=self.design_capacity_w,
        )

    # ------------------------------------------------------------------
    # The per-cycle drive
    # ------------------------------------------------------------------
    def begin_cycle(self, now: Seconds) -> ProvisionCycleEvents:
        """Fire this cycle's capacity events; idempotent per instant."""
        if self._last_now is not None and now <= self._last_now:
            return self._last_events
        self._last_now = float(now)
        self._cycle += 1
        feed_losses = feed_restores = pdu_failures = 0
        cap_started = cap_ended = False
        sc = self.scenario

        # Scheduled feed loss / restore.
        if sc.feed_loss_at_cycle is not None:
            if self._cycle == sc.feed_loss_at_cycle:
                for feed in range(sc.feed_loss_count):
                    if self._feed_live[feed]:
                        self._feed_live[feed] = False
                        feed_losses += 1
            if (
                sc.feed_restore_after_cycles is not None
                and self._cycle
                == sc.feed_loss_at_cycle + sc.feed_restore_after_cycles
            ):
                for feed in range(sc.feed_loss_count):
                    if not self._feed_live[feed] and not self._feed_stochastic[feed]:
                        self._feed_live[feed] = True
                        feed_restores += 1

        # Scheduled PDU failure.
        if (
            sc.pdu_failure_at_cycle is not None
            and self._cycle == sc.pdu_failure_at_cycle
            and self._derate[sc.pdu_failure_rack] == 1.0
        ):
            self._derate[sc.pdu_failure_rack] = sc.pdu_derate_fraction
            pdu_failures += 1

        # Operator cap order onset / expiry.
        if sc.cap_order_at_cycle is not None:
            if self._cycle == sc.cap_order_at_cycle:
                self._operator_cap_w = (
                    sc.cap_order_fraction * self.design_capacity_w
                )
                self._cap_order_end_cycle = (
                    self._cycle + sc.cap_order_duration_cycles
                )
                cap_started = True
            elif (
                self._cap_order_end_cycle is not None
                and self._cycle >= self._cap_order_end_cycle
                and self._operator_cap_w is not None
            ):
                self._operator_cap_w = None
                self._cap_order_end_cycle = None
                cap_ended = True

        # Stochastic events (dedicated substream, fixed draw order).
        gen = self._gen
        if gen is not None and sc.feed_loss_rate > 0.0:
            live = np.flatnonzero(self._feed_live)
            if len(live) > 0 and float(gen.random()) < sc.feed_loss_rate:
                feed = int(live[0])
                self._feed_live[feed] = False
                self._feed_stochastic[feed] = True
                feed_losses += 1
            for feed in np.flatnonzero(self._feed_stochastic):
                if float(gen.random()) < sc.feed_recovery_rate:
                    self._feed_live[feed] = True
                    self._feed_stochastic[feed] = False
                    feed_restores += 1
        if gen is not None and sc.pdu_failure_rate > 0.0:
            healthy = np.flatnonzero(self._derate >= 1.0)
            if len(healthy) > 0 and float(gen.random()) < sc.pdu_failure_rate:
                rack = int(healthy[int(gen.integers(len(healthy)))])
                self._derate[rack] = sc.pdu_derate_fraction
                pdu_failures += 1

        self._feed_losses += feed_losses
        self._feed_restores += feed_restores
        self._pdu_failures += pdu_failures
        if cap_started:
            self._cap_orders += 1
        events = ProvisionCycleEvents(
            feed_losses=feed_losses,
            feed_restores=feed_restores,
            pdu_failures=pdu_failures,
            cap_order_started=cap_started,
            cap_order_ended=cap_ended,
        )
        self._last_events = events
        if feed_losses > 0:
            self._obs.trip("feed_loss", now)
        if pdu_failures > 0:
            self._obs.trip("pdu_failure", now)
        if cap_started:
            self._obs.trip("cap_order", now)
        self._min_capacity_w = min(self._min_capacity_w, self.capacity_w)
        return events

    def branch_overloads(
        self, node_power_w: np.ndarray, alarm_fraction: float
    ) -> np.ndarray:
        """Rack ids drawing above ``alarm_fraction`` of their branch
        limit (tripped racks excluded — they are already dark)."""
        rack_p = self.rack_power_w(node_power_w)
        hot = rack_p > alarm_fraction * self.branch_limits_w
        hot &= ~self._breakers.tripped
        return np.flatnonzero(hot).astype(np.int64)

    def settle(
        self, now: Seconds, dt: Seconds, node_power_w: np.ndarray
    ) -> np.ndarray:
        """Integrate one cycle of true branch power into the physics.

        Advances the breaker trip integrals (overload is measured
        against the PDU-derated rating: a half-failed PDU overheats at
        what used to be a comfortable load), and charges the
        capacity-loss and branch-violation exposure meters.

        Args:
            now: End of the interval, simulated seconds.
            dt: Interval length, seconds.
            node_power_w: True per-node power over the interval, watts.

        Returns:
            Rack ids whose breakers tripped during this interval.
        """
        if dt <= 0.0:
            # Zero-length interval (the first managed cycle has no
            # elapsed time under management): nothing to integrate.
            return np.empty(0, dtype=np.int64)
        rack_p = self.rack_power_w(node_power_w)
        # A derated PDU makes the same current "hotter": scale the load
        # so the breaker model sees overload relative to the derated
        # rating.
        new_trips = self._breakers.step(rack_p / self._derate, dt)
        over = rack_p - self.branch_limits_w
        over[self._breakers.tripped] = 0.0
        worst = float(over.max()) if len(over) else 0.0
        self._last_branch_over_w = max(worst, 0.0)
        if self._last_branch_over_w > 0.0:
            self._branch_violation_s += float(dt)
        lost = self.design_capacity_w - self.capacity_w
        if lost > 0.0:
            self._capacity_lost_w_s += lost * float(dt)
        tripped_now = np.flatnonzero(new_trips).astype(np.int64)
        if len(tripped_now) > 0:
            self._obs.trip("breaker_trip", now)
        return tripped_now

    def headroom_w(self, power_w: Watts) -> float:
        """Watts between a draw and surviving capacity (negative if over)."""
        return self.capacity_w - float(power_w)
