"""Power-delivery fault domain: topology, shrinking budgets, defense.

The paper provisions a single scalar capability ``P_Max``; this package
models where that capability actually comes from — redundant utility
feeds, a UPS stage, per-rack PDU/breaker branch circuits — and what
happens to Algorithm 1 when parts of that delivery path fail or an
operator order shrinks the budget mid-run:

* :class:`~repro.provision.topology.PowerTopology` — the rated,
  immutable delivery hierarchy;
* :class:`~repro.provision.scenario.ProvisionScenario` — which
  capacity events fire and when, plus the defense knobs;
* :class:`~repro.provision.runtime.ProvisionRuntime` — live delivery
  state: feed masks, PDU derates, breaker trip integrals, cap orders
  (stochastic events on the dedicated ``faults.provision`` substream);
* :class:`~repro.provision.emergency.EmergencyResponse` — the
  emergency-red fast path, per-branch capping and the degradation
  ladder (DVFS floor → suspend → shed), with gradual re-admission.

All budget and capacity mutation flows through this package and
:meth:`repro.core.thresholds.ThresholdController.set_envelope` —
reprolint rule RL303 rejects raw writes to budget state anywhere else.
"""

from repro.provision.emergency import EmergencyResponse
from repro.provision.runtime import (
    ProvisionCycleEvents,
    ProvisionRuntime,
    ProvisionStats,
)
from repro.provision.scenario import ProvisionScenario
from repro.provision.topology import PowerTopology

__all__ = [
    "EmergencyResponse",
    "PowerTopology",
    "ProvisionCycleEvents",
    "ProvisionRuntime",
    "ProvisionScenario",
    "ProvisionStats",
]
