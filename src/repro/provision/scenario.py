"""Power-delivery fault scenario configuration.

A :class:`ProvisionScenario` is the frozen, validated description of how
the *budget side* of Algorithm 1 misbehaves during an experiment: which
delivery stages fail, when, and how the emergency response is armed.  It
mirrors :class:`~repro.faults.scenario.FaultScenario` exactly — no
runtime state, no randomness of its own (stochastic events draw from the
dedicated ``faults.provision`` substream inside
:class:`~repro.provision.runtime.ProvisionRuntime`), and
``ProvisionScenario.none()`` attached to a run is guaranteed not to
change a single decision.

Cycle counts are in *managed* control cycles (the manager's τ), counted
from the start of the managed window.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.errors import PRESET_HINT, FaultInjectionError

__all__ = ["PRESET_HINT", "ProvisionScenario"]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{name} must lie in [0, 1], got {value}")


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise FaultInjectionError(f"{name} must lie in (0, 1], got {value}")


@dataclass(frozen=True)
class ProvisionScenario:
    """Topology shape, power-side fault processes and defense knobs.

    Topology (sizing of :class:`~repro.provision.topology.PowerTopology`):

    Attributes:
        nodes_per_rack: Nodes per branch circuit.
        feeds: Redundant utility feeds.
        feed_headroom: Fractional feed margin over ``P_thy`` (feeds
            jointly deliver ``(1+h)·P_thy``).
        rack_headroom: Fractional branch margin over each rack's
            flat-out maximum; negative values under-provision the
            branches (the ``breaker-stress`` setting).

    Deterministic scheduled events:

    Attributes:
        feed_loss_at_cycle: Managed cycle at which ``feed_loss_count``
            feeds drop (None = never).
        feed_loss_count: Feeds lost by the scheduled loss.
        feed_restore_after_cycles: Cycles until the lost feeds return
            (None = permanent).
        pdu_failure_at_cycle: Managed cycle at which one rack's PDU
            partially fails (None = never).
        pdu_failure_rack: Which rack's PDU fails.
        pdu_derate_fraction: Fraction of the branch rating surviving a
            PDU failure.
        cap_order_at_cycle: Managed cycle at which an operator
            cap-reduction order arrives (None = never).
        cap_order_fraction: The ordered cap as a fraction of the design
            capacity.
        cap_order_duration_cycles: How long the order stands.

    Stochastic events (seeded, ``faults.provision`` substream):

    Attributes:
        feed_loss_rate: Per-cycle probability of losing one live feed.
        feed_recovery_rate: Per-cycle probability a stochastically lost
            feed returns.
        pdu_failure_rate: Per-cycle probability a random healthy rack's
            PDU derates.

    Breaker model (see
    :class:`~repro.power.thermal.BreakerThermalModel`):

    Attributes:
        breaker_trip_time_s: Sustained 2× overload seconds that trip.
        breaker_cool_time_s: Deep cool-down seconds draining a full
            trip integral.
        breaker_cooldown_fraction: Lower edge of the breaker's
            no-heat/no-cool band.

    Defense (the emergency response; all inert when ``defend`` is off):

    Attributes:
        defend: Master switch — budget renegotiation, the emergency-red
            fast path and the degradation ladder.
        branch_caps: Per-branch (rack/PDU) capping that protects local
            breakers even when the global budget is satisfied.
        alarm_fraction: Branch power above this fraction of the branch
            limit triggers branch capping.
        escalate_after_cycles: Consecutive over-capacity cycles before
            the ladder climbs a rung.
        recover_after_cycles: Consecutive recovered cycles before the
            ladder steps down a rung.
        recover_fraction: "Recovered" means draw below this fraction of
            surviving capacity.
        max_suspend_fraction: At most this fraction of active jobs may
            be suspended by the ladder.
    """

    nodes_per_rack: int = 8
    feeds: int = 2
    feed_headroom: float = 0.2
    rack_headroom: float = 0.25

    feed_loss_at_cycle: int | None = None
    feed_loss_count: int = 1
    feed_restore_after_cycles: int | None = None
    pdu_failure_at_cycle: int | None = None
    pdu_failure_rack: int = 0
    pdu_derate_fraction: float = 0.6
    cap_order_at_cycle: int | None = None
    cap_order_fraction: float = 0.75
    cap_order_duration_cycles: int = 200

    feed_loss_rate: float = 0.0
    feed_recovery_rate: float = 0.05
    pdu_failure_rate: float = 0.0

    breaker_trip_time_s: float = 60.0
    breaker_cool_time_s: float = 300.0
    breaker_cooldown_fraction: float = 0.9

    defend: bool = True
    branch_caps: bool = True
    alarm_fraction: float = 0.9
    escalate_after_cycles: int = 5
    recover_after_cycles: int = 30
    recover_fraction: float = 0.95
    max_suspend_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.nodes_per_rack < 1:
            raise FaultInjectionError("nodes_per_rack must be >= 1")
        if self.feeds < 1:
            raise FaultInjectionError("need at least one feed")
        if self.feed_headroom <= -1.0 or self.rack_headroom <= -1.0:
            raise FaultInjectionError("headroom fractions must exceed -1")
        for name in (
            "feed_loss_at_cycle",
            "pdu_failure_at_cycle",
            "cap_order_at_cycle",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise FaultInjectionError(f"{name} must be >= 0")
        if not 1 <= self.feed_loss_count <= self.feeds:
            raise FaultInjectionError(
                "feed_loss_count must lie in [1, feeds] "
                f"(got {self.feed_loss_count} of {self.feeds})"
            )
        if (
            self.feed_restore_after_cycles is not None
            and self.feed_restore_after_cycles < 1
        ):
            raise FaultInjectionError("feed_restore_after_cycles must be >= 1")
        if self.pdu_failure_rack < 0:
            raise FaultInjectionError("pdu_failure_rack must be >= 0")
        _check_fraction("pdu_derate_fraction", self.pdu_derate_fraction)
        _check_fraction("cap_order_fraction", self.cap_order_fraction)
        if self.cap_order_duration_cycles < 1:
            raise FaultInjectionError("cap_order_duration_cycles must be >= 1")
        _check_probability("feed_loss_rate", self.feed_loss_rate)
        _check_probability("feed_recovery_rate", self.feed_recovery_rate)
        _check_probability("pdu_failure_rate", self.pdu_failure_rate)
        if self.feed_loss_rate > 0.0 and self.feed_recovery_rate == 0.0:
            raise FaultInjectionError(
                "stochastic feed losses enabled but feed_recovery_rate is 0 "
                "(lost feeds would never come back)"
            )
        if self.breaker_trip_time_s <= 0 or self.breaker_cool_time_s <= 0:
            raise FaultInjectionError("breaker time constants must be positive")
        _check_fraction(
            "breaker_cooldown_fraction", self.breaker_cooldown_fraction
        )
        _check_fraction("alarm_fraction", self.alarm_fraction)
        if self.escalate_after_cycles < 1:
            raise FaultInjectionError("escalate_after_cycles must be >= 1")
        if self.recover_after_cycles < 1:
            raise FaultInjectionError("recover_after_cycles must be >= 1")
        _check_fraction("recover_fraction", self.recover_fraction)
        if not 0.0 <= self.max_suspend_fraction <= 1.0:
            raise FaultInjectionError("max_suspend_fraction must lie in [0, 1]")

    @property
    def enabled(self) -> bool:
        """Whether any power-side fault process is configured."""
        return (
            self.feed_loss_at_cycle is not None
            or self.pdu_failure_at_cycle is not None
            or self.cap_order_at_cycle is not None
            or self.feed_loss_rate > 0.0
            or self.pdu_failure_rate > 0.0
            or self.rack_headroom < 0.0
        )

    @property
    def stochastic(self) -> bool:
        """Whether any event draws from the ``faults.provision`` stream."""
        return self.feed_loss_rate > 0.0 or self.pdu_failure_rate > 0.0

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def none(cls, **overrides) -> "ProvisionScenario":
        """Healthy delivery: topology attached, nothing ever fails."""
        return replace(cls(), **overrides)

    @classmethod
    def feed_loss(cls, **overrides) -> "ProvisionScenario":
        """One of two redundant feeds drops permanently mid-run — the
        global budget shrinks to 60% of ``P_thy`` in a single cycle."""
        base = cls(feed_loss_at_cycle=60)
        return replace(base, **overrides)

    @classmethod
    def pdu_failure(cls, **overrides) -> "ProvisionScenario":
        """Rack 0's PDU partially fails mid-run: its branch keeps only
        60% of its rating while the global budget stays intact — only
        per-branch capping can protect that breaker."""
        base = cls(pdu_failure_at_cycle=60)
        return replace(base, **overrides)

    @classmethod
    def breaker_stress(cls, **overrides) -> "ProvisionScenario":
        """Branches under-provisioned at 85% of each rack's flat-out
        maximum: a busy rack sits in breaker overload from the start and
        trips within minutes unless branch capping holds it down."""
        base = cls(rack_headroom=-0.15)
        return replace(base, **overrides)

    @classmethod
    def cap_order(cls, **overrides) -> "ProvisionScenario":
        """An operator cap-reduction order (grid demand response): the
        budget drops to 70% of design capacity for 180 cycles, then the
        order expires and capacity returns."""
        base = cls(
            cap_order_at_cycle=60,
            cap_order_fraction=0.70,
            cap_order_duration_cycles=180,
        )
        return replace(base, **overrides)

    @classmethod
    def grid_storm(cls, **overrides) -> "ProvisionScenario":
        """Stochastic delivery chaos on the ``faults.provision``
        substream: feeds drop and return at random and rack PDUs derate
        at random — the renegotiation path is exercised repeatedly in
        both directions."""
        base = cls(
            feed_loss_rate=0.01,
            feed_recovery_rate=0.05,
            pdu_failure_rate=0.002,
        )
        return replace(base, **overrides)

    @classmethod
    def preset_names(cls) -> tuple[str, ...]:
        """Names accepted by :meth:`preset`, sorted."""
        return tuple(sorted(_PRESETS))

    @classmethod
    def preset(cls, name: str, **overrides) -> "ProvisionScenario":
        """Look up a named preset, with a friendly error on a typo.

        Raises:
            FaultInjectionError: for an unknown preset name, listing the
                available presets instead of surfacing a bare KeyError.
        """
        try:
            factory = _PRESETS[name]
        except KeyError:
            raise FaultInjectionError(
                f"unknown provision scenario preset {name!r}; available "
                f"presets: {', '.join(cls.preset_names())} "
                f"({PRESET_HINT})"
            ) from None
        return factory(**overrides)


#: Registry behind :meth:`ProvisionScenario.preset` (and the CLI
#: ``--provision`` choices) — add new presets here so every consumer
#: (CLI, chaos CI, ``list-presets``) sees them.
_PRESETS: dict[str, Callable[..., ProvisionScenario]] = {
    "none": ProvisionScenario.none,
    "feed-loss": ProvisionScenario.feed_loss,
    "pdu-failure": ProvisionScenario.pdu_failure,
    "breaker-stress": ProvisionScenario.breaker_stress,
    "cap-order": ProvisionScenario.cap_order,
    "grid-storm": ProvisionScenario.grid_storm,
}
