"""The emergency response to shrinking power-delivery capacity.

When provisioned capacity drops below current draw, Algorithm 1's normal
cadence is too polite: yellow cycles degrade a handful of nodes per
cycle and steady-green hysteresis waits ``T_g`` cycles before restoring
anything, while a breaker upstream is integrating toward a trip.
:class:`EmergencyResponse` implements the defense:

* **emergency red** — any cycle whose draw exceeds surviving capacity is
  forced straight to red (the DVFS floor on every candidate), bypassing
  cadence and hysteresis;
* **degradation ladder** — if the floor is not enough, the response
  escalates: first **suspend** the lowest-priority active jobs (their
  nodes go idle), then **shed** idle candidate nodes from the
  scheduler's pool so no new work re-inflates the draw;
* **recovery / re-admission** — after capacity returns and the draw has
  stayed comfortably inside it, the ladder steps down one rung at a
  time: shed nodes re-admitted, suspended jobs resumed newest-first,
  each on its own recovered cycle (gradual, like Figure 2's restore);
* **branch capping** — racks drawing near their (possibly PDU-derated)
  branch rating are degraded locally even when the global budget is
  satisfied, so no local breaker ever accumulates a trip integral.

The response performs scheduler-side actions itself (suspend / resume /
offline); every DVFS command it *proposes* is returned to the manager,
which applies it through the fenced actuator — this module never writes
a level (RL301) and never writes a threshold (RL303; the manager calls
:meth:`~repro.core.thresholds.ThresholdController.set_envelope` with
:meth:`envelope_w`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.provision.runtime import ProvisionRuntime
from repro.types import Seconds, Watts
from repro.workload.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduler.scheduler import BatchScheduler

__all__ = ["EmergencyResponse"]

#: Ladder rungs (kept as plain ints so they journal/serialize trivially).
RUNG_NORMAL = 0  #: capacity covers the draw
RUNG_CAP = 1  #: emergency red: every candidate at the DVFS floor
RUNG_SUSPEND = 2  #: + lowest-priority jobs suspended
RUNG_SHED = 3  #: + idle candidate nodes removed from the pool


class EmergencyResponse:
    """The capacity-emergency ladder and branch-capping decision logic.

    Args:
        runtime: The live delivery state this response defends.
        scheduler: The batch scheduler, for the suspend/shed rungs and
            for killing jobs on blacked-out racks.  Without one the
            ladder stops at the DVFS floor (rung 1) and blackouts only
            force nodes idle.
        candidate_mask: Boolean mask over all nodes of the candidate
            (throttleable) set; branch capping and shedding only ever
            touch candidates.
    """

    def __init__(
        self,
        runtime: ProvisionRuntime,
        scheduler: "BatchScheduler | None" = None,
        candidate_mask: np.ndarray | None = None,
    ) -> None:
        self._runtime = runtime
        self._scenario = runtime.scenario
        self._scheduler = scheduler
        n = runtime.topology.num_nodes
        if candidate_mask is None:
            mask = np.ones(n, dtype=bool)
        else:
            mask = np.asarray(candidate_mask, dtype=bool).copy()
        self._candidate_mask = mask
        self._over_streak = 0
        self._under_streak = 0
        self._forced_this_emergency = False
        self._suspended_ids: list[int] = []
        self._shed_nodes: list[np.ndarray] = []
        # Counters (folded into ProvisionStats by the manager).
        self.emergency_red_cycles = 0
        self.envelope_renegotiations = 0
        self.branch_cap_interventions = 0
        self.jobs_suspended = 0
        self.jobs_resumed = 0
        self.jobs_killed = 0
        self.nodes_shed = 0
        self.nodes_readmitted = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def runtime(self) -> ProvisionRuntime:
        """The delivery state being defended."""
        return self._runtime

    @property
    def defended(self) -> bool:
        """Whether the emergency response is armed at all."""
        return self._scenario.defend

    @property
    def branch_caps_on(self) -> bool:
        """Whether per-branch capping is armed."""
        return self._scenario.defend and self._scenario.branch_caps

    @property
    def rung(self) -> int:
        """Current ladder rung (derived from outstanding actions)."""
        if self._shed_nodes:
            return RUNG_SHED
        if self._suspended_ids:
            return RUNG_SUSPEND
        return RUNG_CAP if self._over_streak > 0 else RUNG_NORMAL

    def envelope_w(self) -> Watts | None:
        """The capacity envelope to renegotiate thresholds against.

        ``None`` when capacity is zero (a total blackout leaves nothing
        to derive thresholds from — the forced-red path carries the
        response instead).
        """
        cap = self._runtime.capacity_w
        return cap if cap > 0.0 else None

    # ------------------------------------------------------------------
    # The per-cycle decision
    # ------------------------------------------------------------------
    def update(self, now: Seconds, power_w: Watts) -> bool:
        """Advance the ladder one cycle; returns True to force red.

        Called after classification with the cycle's acted-on power.
        Escalation: each ``escalate_after_cycles`` consecutive cycles of
        draw above surviving capacity climbs one rung (suspending one
        more job, then shedding one more rack's worth of idle nodes,
        per over cycle while at that rung).  De-escalation: after
        ``recover_after_cycles`` consecutive cycles comfortably inside
        capacity, one outstanding action is undone per cycle.
        """
        if not self.defended:
            return False
        cap = self._runtime.capacity_w
        over = float(power_w) > cap
        if over:
            self._over_streak += 1
            self._under_streak = 0
            self.emergency_red_cycles += 1
        elif float(power_w) <= self._scenario.recover_fraction * cap:
            self._under_streak += 1
            self._over_streak = 0
        else:
            # Inside capacity but not comfortably: hold position.
            self._over_streak = 0
            self._under_streak = 0

        if over:
            if not self._forced_this_emergency:
                self._forced_this_emergency = True
                self._runtime.obs.trip("capacity_emergency", now)
            if self._over_streak >= self._scenario.escalate_after_cycles:
                self._escalate(now)
        else:
            self._forced_this_emergency = (
                self._forced_this_emergency and self._under_streak == 0
            )
            if (
                self._under_streak >= self._scenario.recover_after_cycles
                and self.rung > RUNG_CAP
            ):
                self._deescalate(now)
        return over

    def _escalate(self, now: Seconds) -> None:
        """One more ladder action: suspend a job, else shed idle nodes."""
        sched = self._scheduler
        if sched is None:
            return
        if self._over_streak < 2 * self._scenario.escalate_after_cycles:
            self._suspend_one(now)
        elif not self._suspend_one(now):
            self._shed_idle_nodes(now)

    def _suspend_one(self, now: Seconds) -> bool:
        """Suspend the lowest-priority active job (latest-started tie
        break); False when the suspend budget is exhausted."""
        sched = self._scheduler
        if sched is None:
            return False
        active = [j for j in sched.running_jobs if j.state is JobState.RUNNING]
        total = len(active) + len(self._suspended_ids)
        if total == 0:
            return False
        budget = int(self._scenario.max_suspend_fraction * total)
        if len(self._suspended_ids) >= budget or not active:
            return False
        victim = min(active, key=lambda j: (j.priority, -j.job_id))
        sched.suspend_job(victim.job_id, now)
        self._suspended_ids.append(victim.job_id)
        self.jobs_suspended += 1
        return True

    def _shed_idle_nodes(self, now: Seconds) -> None:
        """Remove one rack's worth of idle candidate nodes from the
        scheduler's pool (no new admission can re-inflate the draw)."""
        sched = self._scheduler
        if sched is None:
            return
        state = sched.cluster_state
        eligible = (
            state.idle_mask()
            & self._candidate_mask
            & ~sched.offline_mask
        )
        dark = self._runtime.dark_nodes
        eligible[dark] = False
        ids = np.flatnonzero(eligible).astype(np.int64)
        if len(ids) == 0:
            return
        batch = ids[: self._runtime.topology.nodes_per_rack]
        sched.take_offline(batch, now)
        self._shed_nodes.append(batch)
        self.nodes_shed += len(batch)

    def _deescalate(self, now: Seconds) -> None:
        """Undo one outstanding action: re-admit shed nodes first, then
        resume the most recently suspended job."""
        sched = self._scheduler
        if sched is None:
            return
        if self._shed_nodes:
            batch = self._shed_nodes.pop()
            sched.bring_online(batch)
            self.nodes_readmitted += len(batch)
            return
        while self._suspended_ids:
            job_id = self._suspended_ids.pop()
            if sched.resume_job(job_id, now):
                self.jobs_resumed += 1
                return

    # ------------------------------------------------------------------
    # Branch capping
    # ------------------------------------------------------------------
    def branch_targets(
        self, levels: np.ndarray, node_power_w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-branch capping proposal for the manager to actuate.

        Racks drawing above ``alarm_fraction`` of their branch limit get
        every candidate node still above the DVFS floor stepped down one
        level — local, immediate, independent of the global state
        machine.  Returns ``(node_ids, new_levels)``; both empty when
        every branch is comfortable.
        """
        hot_racks = self._runtime.branch_overloads(
            node_power_w, self._scenario.alarm_fraction
        )
        if len(hot_racks) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        topo = self._runtime.topology
        hot = np.zeros(topo.num_nodes, dtype=bool)
        for rack in hot_racks:
            hot[topo.rack_nodes(int(rack))] = True
        lv = np.asarray(levels, dtype=np.int64)
        hot &= self._candidate_mask & (lv > 0)
        ids = np.flatnonzero(hot).astype(np.int64)
        if len(ids) == 0:
            return ids, ids
        self.branch_cap_interventions += 1
        return ids, np.maximum(lv[ids] - 1, 0)

    # ------------------------------------------------------------------
    # Blackout handling (physics — applies defended or not)
    # ------------------------------------------------------------------
    def handle_trips(self, tripped_racks: np.ndarray, now: Seconds) -> np.ndarray:
        """A breaker tripped: the rack is dark.  Kill its jobs, remove
        its nodes from the pool, and return the node ids so the manager
        can force them idle through the fenced actuator."""
        topo = self._runtime.topology
        racks = np.asarray(tripped_racks, dtype=np.int64)
        if len(racks) == 0:
            return np.empty(0, dtype=np.int64)
        nodes = np.concatenate([topo.rack_nodes(int(r)) for r in racks])
        sched = self._scheduler
        if sched is not None:
            dark = set(int(i) for i in nodes)
            victims: list[Job] = [
                job
                for job in sched.running_jobs
                if any(int(i) in dark for i in job.nodes)
            ]
            for job in victims:
                sched.kill_job(job.job_id, now)
                self.jobs_killed += 1
                if job.job_id in self._suspended_ids:
                    self._suspended_ids.remove(job.job_id)
            sched.take_offline(nodes, now)
        return nodes
