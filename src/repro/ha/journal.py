"""The controller state journal: append-only records + compacted checkpoints.

Algorithm 1 is stateful: ``A_degraded``, the green streak ``Time_g``,
the learned ``P_peak`` thresholds, the collector's last-known-good cache
and the manager's degraded-mode latches all live in the controller
process.  If that process dies, a blank successor would restart every
degraded node's history from zero — upgrading nodes it has no basis to
upgrade, re-learning thresholds from scratch, and treating week-old
telemetry as fresh.

The journal makes the controller crash-consistent the way databases do:

* every completed control cycle appends one immutable
  :class:`CycleRecord` — the cycle's *outputs* (classified state,
  commanded pairs, observed power, post-cycle counters) plus the sweep's
  snapshot.  Outputs, not inputs: recovery **replays decisions**, it
  never re-runs policies, so stochastic policies cannot consume RNG
  draws during recovery and diverge from the pre-crash timeline;
* every ``compact_every`` records the manager folds its full state into
  a :class:`ControllerCheckpoint` and the journal drops the records the
  checkpoint subsumes, bounding both memory and recovery replay length;
* :meth:`StateJournal.recover` returns the latest checkpoint plus every
  record after it; :meth:`repro.core.manager.PowerManager.restore_state`
  folds the records onto the checkpoint to land exactly on the
  pre-crash state.

A crash mid-cycle loses at most that one uncommitted cycle — the append
happens only after actuation completes — which mirrors a write-ahead
log's torn-tail rule: the tail record is either wholly present or
wholly absent, never half-applied.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerManagementError
from repro.telemetry.collector import TelemetrySnapshot

__all__ = ["CycleRecord", "ControllerCheckpoint", "JournalRecovery", "StateJournal"]


@dataclass(frozen=True)
class CycleRecord:
    """One completed control cycle, as journaled.

    Attributes:
        cycle: The manager's 1-based cycle index after this cycle.
        time: Simulated time of the cycle.
        power_w: The power the cycle acted on (post-perturbation meter
            reading, or the Formula (1) estimate when unmetered).
        metered: Whether ``power_w`` came from the meter; replay feeds
            only metered readings back into threshold learning, exactly
            as the live cycle did.
        state: The classified :class:`~repro.core.states.PowerState`
            value string (after any forced-red override).
        forced_red: Whether the blackout rung forced this cycle red.
        action: The :class:`~repro.core.capping.CappingAction` value.
        node_ids: The decision's commanded node ids (ordered pairs
            ``(i, l)`` of Algorithm 1).
        new_levels: The commanded levels, aligned with ``node_ids``.
        time_in_green: ``Time_g`` after this cycle.
        coverage: The sweep's fresh-telemetry fraction.
        blackout_streak: The manager's sub-coverage streak after this
            cycle (the forced-red rung's latch).
        snapshot: The cycle's telemetry snapshot.  The last record's
            snapshot *is* the recovered last-known-good cache: its rows
            equal the cache rows by construction and each node's last
            report time is ``snapshot.time − age``.
        actuator: :meth:`DvfsActuator.state_dict` after this cycle —
            the in-flight retry queue and counters, so a journal
            restored onto a *fresh* actuator (cold restore in a new
            process) reconstructs the queue; the warm shared-actuator
            wiring ignores it.
    """

    cycle: int
    time: float
    power_w: float
    metered: bool
    state: str
    forced_red: bool
    action: str
    node_ids: tuple[int, ...]
    new_levels: tuple[int, ...]
    time_in_green: int
    coverage: float
    blackout_streak: int
    snapshot: TelemetrySnapshot
    actuator: dict


@dataclass(frozen=True)
class ControllerCheckpoint:
    """A compacted full controller state at one cycle boundary.

    Everything :class:`CycleRecord` folding needs a base for; produced
    by :meth:`repro.core.manager.PowerManager.checkpoint`.

    Attributes:
        cycle: Manager cycle index the checkpoint describes.
        time: Simulated time of that cycle (0.0 before any cycle).
        thresholds: :meth:`ThresholdController.state_dict` section.
        degraded_mask: ``A_degraded`` as a tuple of bools over all ids.
        time_in_green: ``Time_g``.
        state_counts: Cycle counts per power-state value string.
        forced_red_cycles / estimated_cycles / blackout_streak: The
            degraded-mode ladder's counters and latch.
        snapshot: The collector's current snapshot (None before the
            first sweep).
        collections / dropped_samples / accumulated_cost_s: Collector
            accounting.
        last_metered_power / last_metered_snapshot: The estimation
            anchor for meter-outage cycles.
        actuator: :meth:`DvfsActuator.state_dict` section — counters and
            the in-flight command queue.  In the shared-actuator HA
            wiring this is informational (the live queue survives the
            controller), but a journal restored onto a *fresh* actuator
            reconstructs the queue from here.

    The recovery hold (``_recovery_pending``) is deliberately absent:
    a restored manager always starts with the full re-observation hold,
    even if the crashed manager was itself mid-recovery.
    """

    cycle: int
    time: float
    thresholds: dict
    degraded_mask: tuple[bool, ...]
    time_in_green: int
    state_counts: dict[str, int]
    forced_red_cycles: int
    estimated_cycles: int
    blackout_streak: int
    snapshot: TelemetrySnapshot | None
    collections: int
    dropped_samples: int
    accumulated_cost_s: float
    last_metered_power: float | None
    last_metered_snapshot: TelemetrySnapshot | None
    actuator: dict


@dataclass(frozen=True)
class JournalRecovery:
    """What :meth:`StateJournal.recover` hands a restoring manager."""

    checkpoint: ControllerCheckpoint | None
    records: tuple[CycleRecord, ...]

    @property
    def last_cycle(self) -> int:
        """The cycle index recovery lands on (0 = pristine state)."""
        if self.records:
            return self.records[-1].cycle
        if self.checkpoint is not None:
            return self.checkpoint.cycle
        return 0


class StateJournal:
    """In-memory append-only journal with periodic compaction.

    The simulation's stand-in for a replicated log or journaled file:
    appends are atomic (a record object either is in the list or is
    not), records are immutable, and compaction replaces the prefix with
    a single checkpoint exactly like snapshotting a write-ahead log.

    Args:
        compact_every: Records accumulated before
            :meth:`should_compact` asks the manager for a checkpoint.
    """

    def __init__(self, compact_every: int = 64) -> None:
        if compact_every < 1:
            raise PowerManagementError("compact_every must be >= 1")
        self._compact_every = int(compact_every)
        self._base: ControllerCheckpoint | None = None
        self._records: list[CycleRecord] = []
        self._appended_total = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def base(self) -> ControllerCheckpoint | None:
        """The latest compacted checkpoint (None before the first)."""
        return self._base

    @property
    def records(self) -> tuple[CycleRecord, ...]:
        """Records appended after the current base, oldest first."""
        return tuple(self._records)

    @property
    def size(self) -> int:
        """Records currently held (bounded by ``compact_every``)."""
        return len(self._records)

    @property
    def appended_total(self) -> int:
        """Records appended over the journal's lifetime."""
        return self._appended_total

    @property
    def compactions(self) -> int:
        """Checkpoints folded in so far."""
        return self._compactions

    @property
    def last_cycle(self) -> int:
        """Cycle index of the newest journaled state (0 when empty)."""
        if self._records:
            return self._records[-1].cycle
        if self._base is not None:
            return self._base.cycle
        return 0

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------
    def append(self, record: CycleRecord) -> None:
        """Append one completed cycle's record.

        Raises:
            PowerManagementError: on a record that does not advance the
                journal's cycle index — out-of-order appends mean two
                managers think they own the journal, which the fencing
                layer exists to prevent; the journal refuses rather than
                silently interleaving timelines.
        """
        if record.cycle <= self.last_cycle:
            raise PowerManagementError(
                f"journal append out of order: cycle {record.cycle} after "
                f"{self.last_cycle}"
            )
        self._records.append(record)
        self._appended_total += 1

    def should_compact(self) -> bool:
        """Whether the record tail has grown past ``compact_every``."""
        return len(self._records) >= self._compact_every

    def compact(self, checkpoint: ControllerCheckpoint) -> None:
        """Adopt a checkpoint and drop the records it subsumes.

        Raises:
            PowerManagementError: if the checkpoint is older than the
                journal tail — compacting with a stale checkpoint would
                silently rewind the recovery point.
        """
        if checkpoint.cycle < self.last_cycle:
            raise PowerManagementError(
                f"stale checkpoint: cycle {checkpoint.cycle} < journal "
                f"tail {self.last_cycle}"
            )
        self._base = checkpoint
        self._records = [r for r in self._records if r.cycle > checkpoint.cycle]
        self._compactions += 1

    # ------------------------------------------------------------------
    # The read path
    # ------------------------------------------------------------------
    def recover(self) -> JournalRecovery:
        """The latest checkpoint plus every record after it."""
        return JournalRecovery(checkpoint=self._base, records=tuple(self._records))
