"""Controller crash-recovery: journal, warm-standby failover, fencing.

The paper's global power manager (Figure 1) is a single process holding
all of Algorithm 1's cross-cycle state; §I.A's own failure-rate argument
says that process will die.  This package makes the control plane
survive it:

* :class:`~repro.ha.journal.StateJournal` — a crash-consistent record of
  everything Algorithm 1 needs to resume (``A_degraded``, ``Time_g``,
  learned thresholds, the last-known-good telemetry cache, degraded-mode
  latches, in-flight command retries): append-only
  :class:`~repro.ha.journal.CycleRecord` per cycle, periodically
  compacted into a :class:`~repro.ha.journal.ControllerCheckpoint`;
* :class:`~repro.ha.failover.HaController` — the crash/takeover state
  machine: scripted or stochastic controller crashes, lease-expiry
  warm-standby failover or cold restart, journal recovery;
* **fencing** — each manager incarnation holds a monotone epoch checked
  by :class:`~repro.core.actuator.DvfsActuator`; commands from a deposed
  or crashed incarnation are rejected, so exactly one manager's word
  reaches the machine per cycle (``epoch_conflicts`` witnesses the
  invariant), and a restored manager never upgrades a node until it has
  re-observed fresh telemetry from every candidate.

Everything is off (and imported by nothing on the hot path) unless
:class:`~repro.ha.config.HaConfig` is enabled; a disabled run is
bit-for-bit the paper's single-manager behaviour.
"""

from repro.ha.config import HaConfig
from repro.ha.failover import HaController, HaStats
from repro.ha.journal import (
    ControllerCheckpoint,
    CycleRecord,
    JournalRecovery,
    StateJournal,
)

__all__ = [
    "ControllerCheckpoint",
    "CycleRecord",
    "HaConfig",
    "HaController",
    "HaStats",
    "JournalRecovery",
    "StateJournal",
]
