"""Warm-standby failover for the global power manager.

:class:`HaController` wraps the live :class:`~repro.core.manager.PowerManager`
with the crash/recovery lifecycle:

* each control cycle it first asks the fault model (scripted
  ``crash_at_cycles`` or the seeded ``controller_crash_rate`` process)
  whether the primary dies *this* cycle — a crash loses the cycle's
  control action, exactly like a process dying before actuating;
* while the controller is down the machine runs open-loop: jobs run,
  power moves, nobody senses or caps.  Downtime is
  ``lease_timeout_cycles`` when a warm standby is ready (lease expiry is
  the detection mechanism — the standby may not act sooner, or two
  managers could act in one cycle) and ``restart_cycles`` for a cold
  restart;
* at takeover the successor is built by the caller's ``manager_factory``
  (sharing the cluster, node sets, meter, policy, fault injector,
  recorder and — crucially — the **live actuator**, because in-flight
  DVFS commands are in the network, not in the dead process), restored
  from the :class:`~repro.ha.journal.StateJournal`, and fenced in by
  advancing the actuator's epoch.  Anything the deposed primary still
  has in flight is rejected at the fence, so no cycle is ever acted on
  by two managers — the invariant :attr:`DvfsActuator.epoch_conflicts`
  counts violations of (and the failover benchmark asserts stays zero).

In-flight commands are *frozen* during downtime: the actuator's cycle
clock only advances when a manager runs a cycle, so a command that was
in the network when the primary died arrives after the successor's
takeover and is fenced.  This is the conservative reading of the
paper's single-manager assumption — a command whose issuer cannot be
confirmed alive must not land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import PowerManagementError
from repro.ha.config import HaConfig
from repro.ha.journal import StateJournal
from repro.obs.facade import Observability, resolve_obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.manager import CycleReport, PowerManager

__all__ = ["HaController", "HaStats"]


@dataclass(frozen=True)
class HaStats:
    """Crash/recovery accounting for one run.

    Attributes:
        crashes: Controller crashes that struck.
        failovers: Takeovers completed (warm + cold).
        warm_failovers: Takeovers served by a ready standby.
        cold_restarts: Takeovers that needed a full restart.
        downtime_cycles: Control cycles with no manager acting.
        fenced_commands: Commands rejected by the fencing epoch.
        epoch_conflicts: Cycles acted on by two epochs (must be 0).
        final_epoch: The actuator's fencing epoch at the end.
        journal_records: Records appended over the run.
        journal_compactions: Checkpoints folded into the journal.
    """

    crashes: int
    failovers: int
    warm_failovers: int
    cold_restarts: int
    downtime_cycles: int
    fenced_commands: int
    epoch_conflicts: int
    final_epoch: int
    journal_records: int
    journal_compactions: int


class HaController:
    """The crash/failover lifecycle around a power manager.

    Args:
        manager: The initial primary (already wired to the journal).
        manager_factory: Zero-argument callable building a successor
            manager that shares the primary's world — cluster, sets,
            meter, policy, injector, recorder, journal and the same
            actuator object — with *fresh* controller-internal state
            (thresholds, collector, Algorithm 1).  The controller
            restores that state from the journal; the factory must not.
        journal: The shared state journal.
        config: The :class:`~repro.ha.config.HaConfig` (must be
            ``enabled``).
        obs: Observability facade; trips the flight recorder on every
            controller crash and takeover, and mirrors the crash/
            recovery accounting as collected metric series.
    """

    def __init__(
        self,
        manager: "PowerManager",
        manager_factory: Callable[[], "PowerManager"],
        journal: StateJournal,
        config: HaConfig,
        obs: Observability | None = None,
    ) -> None:
        if not config.enabled:
            raise PowerManagementError("HaController requires HaConfig.enabled")
        self._manager = manager
        self._factory = manager_factory
        self._journal = journal
        self._config = config
        self._actuator = manager.actuator
        self._injector = manager.fault_injector
        # The primary adopts the command path's current epoch so a later
        # fence can depose it (an epoch-less manager can never be fenced).
        manager.set_fencing_epoch(self._actuator.epoch)
        self._crash_at = frozenset(config.crash_at_cycles)
        self._cycle = 0
        self._up = True
        self._down_remaining = 0
        self._standby_ready_cycle = 0 if config.warm_standby else None
        self._warm_next = False
        self._crashes = 0
        self._failovers = 0
        self._warm_failovers = 0
        self._cold_restarts = 0
        self._downtime_cycles = 0
        self._obs = resolve_obs(obs)
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Mirror the crash/recovery accounting as collected series."""
        obs = self._obs
        if not obs.metrics_on:
            return
        reg = obs.metrics
        reg.counter_func(
            "repro_controller_crashes_total",
            "Controller crashes that struck",
            lambda: float(self._crashes),
        )
        reg.counter_func(
            "repro_failovers_total",
            "Takeovers completed, by kind",
            lambda: float(self._warm_failovers),
            labels={"kind": "warm"},
        )
        reg.counter_func(
            "repro_failovers_total",
            "Takeovers completed, by kind",
            lambda: float(self._cold_restarts),
            labels={"kind": "cold"},
        )
        reg.counter_func(
            "repro_downtime_cycles_total",
            "Control cycles with no manager acting",
            lambda: float(self._downtime_cycles),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def manager(self) -> "PowerManager":
        """The manager currently holding (or awaiting) the lease."""
        return self._manager

    @property
    def up(self) -> bool:
        """Whether a manager is acting this cycle."""
        return self._up

    @property
    def epoch(self) -> int:
        """The actuator's current fencing epoch."""
        return self._actuator.epoch

    @property
    def cycles(self) -> int:
        """HA-layer control cycles elapsed (up or down)."""
        return self._cycle

    def stats(self) -> HaStats:
        """The run's crash/recovery accounting."""
        return HaStats(
            crashes=self._crashes,
            failovers=self._failovers,
            warm_failovers=self._warm_failovers,
            cold_restarts=self._cold_restarts,
            downtime_cycles=self._downtime_cycles,
            fenced_commands=self._actuator.fenced_commands,
            epoch_conflicts=self._actuator.epoch_conflicts,
            final_epoch=self._actuator.epoch,
            journal_records=self._journal.appended_total,
            journal_compactions=self._journal.compactions,
        )

    # ------------------------------------------------------------------
    # The HA control cycle
    # ------------------------------------------------------------------
    def control_cycle(self, now: float) -> "CycleReport | None":
        """Run one cycle of the crash/recovery state machine.

        Returns the manager's :class:`~repro.core.manager.CycleReport`,
        or ``None`` for a cycle the controller was down (crash cycle or
        downtime) — the machine ran open-loop.
        """
        self._cycle += 1
        if self._up and self._crash_strikes(now):
            self._crashes += 1
            self._up = False
            self._down_remaining = self._downtime_for_crash()
            self._obs.trip("controller_crash", now)
        if self._down_remaining > 0:
            self._down_remaining -= 1
            self._downtime_cycles += 1
            return None
        if not self._up:
            self._take_over()
            self._obs.trip("failover", now)
        return self._manager.control_cycle(now)

    def _crash_strikes(self, now: float) -> bool:
        if self._cycle in self._crash_at:
            return True
        inj = self._injector
        if inj is None or inj.scenario.controller_crash_rate <= 0.0:
            return False
        inj.begin_cycle(now)
        return inj.controller_crash_event()

    def _downtime_for_crash(self) -> int:
        """Cycles of downtime this crash costs (incl. the crash cycle)."""
        if (
            self._standby_ready_cycle is not None
            and self._cycle >= self._standby_ready_cycle
        ):
            self._warm_next = True
            return self._config.lease_timeout_cycles
        self._warm_next = False
        return self._config.restart_cycles

    def _take_over(self) -> None:
        """Build, restore and fence in the successor manager."""
        successor = self._factory()
        if successor.actuator is not self._actuator:
            raise PowerManagementError(
                "manager_factory must share the live actuator: in-flight "
                "commands are in the network and must be fenceable"
            )
        successor.restore_state(self._journal.recover())
        # Fencing: advance the epoch *after* recovery so the successor's
        # first command carries a token no deposed manager ever held.
        successor.set_fencing_epoch(self._actuator.advance_epoch())
        self._manager = successor
        self._failovers += 1
        if self._warm_next:
            self._warm_failovers += 1
            # The consumed standby is replaced in the background; until
            # the replacement finishes launching, a further crash costs
            # a full restart.
            self._standby_ready_cycle = self._cycle + self._config.restart_cycles
        else:
            self._cold_restarts += 1
        self._up = True
