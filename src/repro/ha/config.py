"""High-availability configuration for the global power manager.

The paper's architecture (Figure 1) has exactly one global power
manager; §I.A motivates the whole design with component failure rates at
scale, yet the manager itself is a single point of failure.
:class:`HaConfig` describes how a deployment closes that gap: how often
the state journal compacts, whether a warm standby is provisioned, how
long detection-plus-takeover (the lease timeout) or a cold restart
takes, and — for deterministic experiments — an explicit script of
controller-crash cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["HaConfig"]


@dataclass(frozen=True)
class HaConfig:
    """Knobs of the controller crash-recovery layer (:mod:`repro.ha`).

    Attributes:
        enabled: Arm the HA layer.  Disabled, the run is bit-for-bit the
            non-HA run (no journal appends, no crash handling).
        warm_standby: Keep a standby manager ready to take over.  A
            crash then costs only ``lease_timeout_cycles`` of downtime
            (lease expiry + fenced takeover); without a standby every
            crash costs a full ``restart_cycles`` cold restart.
        lease_timeout_cycles: Control cycles the primary's lease lives
            without renewal; the standby may only act after it expires,
            so this is also the warm-failover downtime.
        restart_cycles: Control cycles to cold-restart a crashed
            manager (process launch + journal recovery) — the downtime
            when no ready standby exists.
        journal_compact_every: Append a compacted full checkpoint after
            this many journal records, bounding both recovery replay
            length and journal memory.
        crash_at_cycles: Explicit 1-based controller-cycle indices at
            which the primary crashes, independent of any stochastic
            crash process — the deterministic sweep the failover
            benchmarks drive.
    """

    enabled: bool = False
    warm_standby: bool = True
    lease_timeout_cycles: int = 3
    restart_cycles: int = 20
    journal_compact_every: int = 64
    crash_at_cycles: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.lease_timeout_cycles < 1:
            raise ConfigurationError("lease_timeout_cycles must be >= 1")
        if self.restart_cycles < 1:
            raise ConfigurationError("restart_cycles must be >= 1")
        if self.journal_compact_every < 1:
            raise ConfigurationError("journal_compact_every must be >= 1")
        if any(c < 1 for c in self.crash_at_cycles):
            raise ConfigurationError("crash_at_cycles are 1-based cycle indices")
        if len(set(self.crash_at_cycles)) != len(self.crash_at_cycles):
            raise ConfigurationError("crash_at_cycles must be distinct")

    @classmethod
    def warm(cls, **overrides) -> "HaConfig":
        """Warm-standby HA (the recommended deployment)."""
        return replace(cls(enabled=True, warm_standby=True), **overrides)

    @classmethod
    def restart_only(cls, **overrides) -> "HaConfig":
        """HA by cold restart only (no standby provisioned)."""
        return replace(cls(enabled=True, warm_standby=False), **overrides)
